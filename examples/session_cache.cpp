// Persistent sessions + the fused batch: warm an Engine, SaveSession() it,
// then show a "restarted" process restoring the cache with LoadSession() and
// answering all five Solve problems from disk — zero rebuilds — via ONE
// SolveAll traversal.
//
// CI runs this end-to-end (alongside quickstart); any failure exits
// non-zero.
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace treedl;

  // A deterministic width-3 instance standing in for "the nightly input".
  Rng rng(2007);
  Graph graph = RandomPartialKTree(/*n=*/80, /*k=*/3, /*keep_probability=*/0.7,
                                   &rng);
  EngineOptions options;
  options.num_threads = 4;
  const std::string path = "session_cache_example.tdls";

  // --- Process 1: pay for the artifacts once, batch the queries, save. ----
  Engine warm = Engine::FromGraph(graph, options);
  RunStats first;
  auto all = warm.SolveAll(&first);
  if (!all.ok()) {
    std::cerr << "SolveAll failed: " << all.status() << "\n";
    return 1;
  }
  std::cout << "SolveAll (one fused traversal, " << first.dp_passes
            << " DP passes, " << first.dp_shards << " shards):\n"
            << "  3-colorable:          "
            << (all->three_colorable ? "yes" : "no") << "\n"
            << "  #3-colorings:         " << all->three_colorings << "\n"
            << "  min vertex cover:     " << all->min_vertex_cover << "\n"
            << "  max independent set:  " << all->max_independent_set << "\n"
            << "  min dominating set:   " << all->min_dominating_set << "\n"
            << "  stats: " << first.ToString() << "\n\n";

  RunStats save_run;
  Status saved = warm.SaveSession(path, &save_run);
  if (!saved.ok()) {
    std::cerr << "SaveSession failed: " << saved << "\n";
    return 1;
  }
  std::cout << "Saved " << save_run.artifact_saves << " artifacts to " << path
            << "\n\n";

  // --- Process 2 (simulated restart): restore instead of rebuild. --------
  Engine cold = Engine::FromGraph(graph, options);
  RunStats load_run;
  Status loaded = cold.LoadSession(path, &load_run);
  if (!loaded.ok()) {
    std::cerr << "LoadSession failed: " << loaded << "\n";
    return 1;
  }
  std::cout << "Restored " << load_run.artifact_loads
            << " artifacts (builds during load: encode="
            << load_run.encode_builds << " td=" << load_run.td_builds
            << " normalize=" << load_run.normalize_builds << ")\n";

  RunStats second;
  auto restored = cold.SolveAll(&second);
  if (!restored.ok()) {
    std::cerr << "SolveAll after load failed: " << restored.status() << "\n";
    return 1;
  }
  std::cout << "SolveAll after restart: td_builds=" << second.td_builds
            << " normalize_builds=" << second.normalize_builds
            << " cache_hits=" << second.cache_hits << "\n";

  bool identical = restored->three_colorable == all->three_colorable &&
                   restored->three_colorings == all->three_colorings &&
                   restored->min_vertex_cover == all->min_vertex_cover &&
                   restored->max_independent_set == all->max_independent_set &&
                   restored->min_dominating_set == all->min_dominating_set;
  bool zero_rebuilds = second.td_builds == 0 && second.normalize_builds == 0 &&
                       second.encode_builds == 0;
  std::remove(path.c_str());
  if (!identical || !zero_rebuilds) {
    std::cerr << "FAILED: answers diverged or the restored session rebuilt "
                 "artifacts\n";
    return 1;
  }
  std::cout << "\nOK: identical answers, zero rebuilds after restore.\n";
  return 0;
}
