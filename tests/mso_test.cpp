#include <gtest/gtest.h>

#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algorithms.hpp"
#include "mso/evaluator.hpp"
#include "mso/formulas.hpp"
#include "mso/parser.hpp"
#include "mso/types.hpp"
#include "schema/encode.hpp"
#include "schema/generators.hpp"
#include "schema/primality_bruteforce.hpp"

#include "test_util.hpp"

namespace treedl::mso {
namespace {

// --- Parser / AST -------------------------------------------------------------

TEST(MsoParserTest, PrecedenceAndAssociativity) {
  auto f = ParseFormula("p(x) & q(x) | r(x)");
  ASSERT_TRUE(f.ok());
  // & binds tighter than |.
  EXPECT_EQ((*f)->kind, FormulaKind::kOr);
  auto g = ParseFormula("p(x) -> q(x) -> r(x)");
  ASSERT_TRUE(g.ok());
  // -> is right associative.
  EXPECT_EQ((*g)->kind, FormulaKind::kImplies);
  EXPECT_EQ((*g)->right->kind, FormulaKind::kImplies);
}

TEST(MsoParserTest, QuantifierScopeMaximal) {
  auto f = ParseFormula("ex1 x: p(x) & q(x)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind, FormulaKind::kExistsFo);
  EXPECT_EQ((*f)->left->kind, FormulaKind::kAnd);
}

TEST(MsoParserTest, MultiVariableQuantifier) {
  auto f = ParseFormula("all1 u, v: e(u, v)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->kind, FormulaKind::kForallFo);
  EXPECT_EQ((*f)->left->kind, FormulaKind::kForallFo);
  EXPECT_EQ(QuantifierDepth(**f), 2);
}

TEST(MsoParserTest, SugarForms) {
  EXPECT_TRUE(ParseFormula("x != y").ok());
  EXPECT_TRUE(ParseFormula("x notin Y").ok());
  EXPECT_TRUE(ParseFormula("X sub Y").ok());
  auto f = ParseFormula("x != y");
  EXPECT_EQ((*f)->kind, FormulaKind::kNot);
}

TEST(MsoParserTest, Errors) {
  EXPECT_FALSE(ParseFormula("").ok());
  EXPECT_FALSE(ParseFormula("p(x").ok());
  EXPECT_FALSE(ParseFormula("ex1 : p(x)").ok());
  EXPECT_FALSE(ParseFormula("p(x) &").ok());
  EXPECT_FALSE(ParseFormula("p(x)) ").ok());
  EXPECT_FALSE(ParseFormula("x = ").ok());
}

TEST(MsoAstTest, QuantifierDepthAndFreeVariables) {
  FormulaPtr phi = PrimalityFormula("x");
  EXPECT_EQ(QuantifierDepth(*phi), 4);
  FreeVariables free = ComputeFreeVariables(*phi);
  EXPECT_EQ(free.fo, (std::set<std::string>{"x"}));
  EXPECT_TRUE(free.so.empty());

  FormulaPtr three_col = ThreeColorabilitySentence();
  FreeVariables fv2 = ComputeFreeVariables(*three_col);
  EXPECT_TRUE(fv2.fo.empty());
  EXPECT_TRUE(fv2.so.empty());
}

TEST(MsoAstTest, SignatureCheck) {
  FormulaPtr f = *ParseFormula("e(x, y) & color(x)");
  EXPECT_FALSE(CheckAgainstSignature(*f, Signature::GraphSignature()).ok());
  FormulaPtr g = *ParseFormula("e(x, y, z)");
  EXPECT_FALSE(CheckAgainstSignature(*g, Signature::GraphSignature()).ok());
  FormulaPtr h = *ParseFormula("e(x, y)");
  EXPECT_TRUE(CheckAgainstSignature(*h, Signature::GraphSignature()).ok());
}

TEST(MsoAstTest, ToStringReparses) {
  for (FormulaPtr f : {ThreeColorabilitySentence(), PrimalityFormula("x"),
                       ConnectednessSentence()}) {
    auto reparsed = ParseFormula(ToString(*f));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(ToString(**reparsed), ToString(*f));
  }
}

// --- Evaluator -----------------------------------------------------------------

TEST(MsoEvalTest, ThreeColorabilityMatchesBruteForce) {
  Rng rng(TestSeed());
  FormulaPtr phi = ThreeColorabilitySentence();
  std::vector<Graph> graphs{CompleteGraph(3), CompleteGraph(4), CycleGraph(5),
                            PetersenGraph()};
  for (int trial = 0; trial < 6; ++trial) {
    graphs.push_back(RandomGnp(6, 0.5, &rng));
  }
  for (const Graph& g : graphs) {
    Structure s = GraphToStructure(g);
    auto verdict = EvaluateSentence(s, *phi);
    ASSERT_TRUE(verdict.ok()) << verdict.status();
    EXPECT_EQ(*verdict, BruteForceColoring(g, 3).has_value());
  }
}

TEST(MsoEvalTest, ConnectednessSentence) {
  FormulaPtr phi = ConnectednessSentence();
  EXPECT_TRUE(*EvaluateSentence(GraphToStructure(PathGraph(5)), *phi));
  EXPECT_TRUE(*EvaluateSentence(GraphToStructure(CycleGraph(6)), *phi));
  Graph disconnected(4);
  disconnected.AddEdge(0, 1);
  disconnected.AddEdge(2, 3);
  EXPECT_FALSE(*EvaluateSentence(GraphToStructure(disconnected), *phi));
}

TEST(MsoEvalTest, PrimalityOnPaperExample) {
  // Ex 2.6: (A, a) ⊨ φ(x) and (A, e) ⊭ φ(x).
  Schema schema = Schema::PaperExampleSchema();
  SchemaEncoding enc = EncodeSchema(schema);
  FormulaPtr phi = PrimalityFormula("x");
  auto eval = [&](const char* name) {
    ElementId e = enc.structure.ElementByName(name).value();
    auto v = EvaluateUnary(enc.structure, *phi, "x", e);
    EXPECT_TRUE(v.ok()) << v.status();
    return v.value_or(false);
  };
  EXPECT_TRUE(eval("a"));
  EXPECT_TRUE(eval("b"));
  EXPECT_TRUE(eval("c"));
  EXPECT_TRUE(eval("d"));
  EXPECT_FALSE(eval("e"));
  EXPECT_FALSE(eval("g"));
}

TEST(MsoEvalTest, PrimalityMatchesBruteForceOnRandomSchemas) {
  Rng rng(TestSeed());
  FormulaPtr phi = PrimalityFormula("x");
  for (int trial = 0; trial < 5; ++trial) {
    Schema schema = RandomWindowSchema(6, 4, 3, &rng);
    SchemaEncoding enc = EncodeSchema(schema);
    auto primes = AllPrimesBruteForce(schema);
    for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
      auto v = EvaluateUnary(enc.structure, *phi, "x", enc.AttrElement(a));
      ASSERT_TRUE(v.ok()) << v.status();
      EXPECT_EQ(*v, primes[static_cast<size_t>(a)])
          << "trial " << trial << " attr " << schema.AttributeName(a);
    }
  }
}

TEST(MsoEvalTest, UnboundVariableIsError) {
  FormulaPtr f = *ParseFormula("e(x, y)");
  Structure s = GraphToStructure(PathGraph(2));
  Assignment env;
  env.fo["x"] = 0;  // y unbound
  EXPECT_EQ(Evaluate(s, *f, env).status().code(), StatusCode::kInvalidArgument);
}

TEST(MsoEvalTest, WorkBudgetExhaustion) {
  // The MONA stand-in behaviour: small budget → ResourceExhausted.
  FormulaPtr phi = ThreeColorabilitySentence();
  Structure s = GraphToStructure(CycleGraph(8));
  EvalOptions options;
  options.work_budget = 100;
  auto v = EvaluateSentence(s, *phi, options);
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
  // Unlimited budget succeeds.
  EvalUsage usage;
  auto ok = EvaluateSentence(s, *phi, EvalOptions{}, &usage);
  ASSERT_TRUE(ok.ok());
  EXPECT_GT(usage.work, 100u);
}

TEST(MsoEvalTest, ShadowedQuantifierRestoresBinding) {
  // ex1 x: (e(x, x)) inside a context where x is already bound must not
  // clobber the outer binding.
  FormulaPtr f = *ParseFormula("e(x, y) & (ex1 x: e(x, x)) & e(x, y)");
  Structure s(Signature::GraphSignature());
  ElementId a = s.AddElement("a");
  ElementId b = s.AddElement("b");
  ASSERT_TRUE(s.AddFact(0, {a, b}).ok());
  ASSERT_TRUE(s.AddFact(0, {b, b}).ok());
  Assignment env;
  env.fo["x"] = a;
  env.fo["y"] = b;
  auto v = Evaluate(s, *f, env);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(*v);
}

TEST(MsoEvalTest, DomainCapEnforced) {
  Structure s(Signature::GraphSignature());
  for (int i = 0; i < 70; ++i) s.AddElement("v" + std::to_string(i));
  FormulaPtr f = *ParseFormula("ex1 x: e(x, x)");
  EXPECT_EQ(EvaluateSentence(s, *f).status().code(), StatusCode::kOutOfRange);
}

// --- k-types --------------------------------------------------------------------

TEST(MsoTypesTest, TypeInvariantUnderIsomorphism) {
  // Two isomorphic paths with different element orderings.
  Structure s1 = GraphToStructure(PathGraph(4));
  Graph g2(4);
  g2.AddEdge(3, 2);
  g2.AddEdge(2, 1);
  g2.AddEdge(1, 0);
  Structure s2 = GraphToStructure(g2);
  TypeComputer tc;
  for (int k = 0; k <= 2; ++k) {
    // Path endpoints correspond: 0 <-> 3.
    auto eq = KEquivalent(&tc, s1, {0}, s2, {3}, k);
    ASSERT_TRUE(eq.ok()) << eq.status();
    EXPECT_TRUE(*eq) << "k=" << k;
  }
}

TEST(MsoTypesTest, DistinguishableStructuresDiffer) {
  // A vertex with an outgoing edge vs an isolated vertex: distinguishable at
  // quantifier rank 1, but not at rank 0.
  Structure s(Signature::GraphSignature());
  ElementId a = s.AddElement("a");
  ElementId b = s.AddElement("b");
  ElementId c = s.AddElement("c");
  ASSERT_TRUE(s.AddFact(0, {a, b}).ok());
  TypeComputer tc;
  EXPECT_TRUE(*KEquivalent(&tc, s, {a}, s, {c}, 0));   // same atomic type
  EXPECT_FALSE(*KEquivalent(&tc, s, {a}, s, {c}, 1));  // ex1 y: e(x, y) splits
}

TEST(MsoTypesTest, RefinementMonotonicity) {
  // k+1-equivalence implies k-equivalence.
  Rng rng(TestSeed());
  TypeComputer tc;
  for (int trial = 0; trial < 6; ++trial) {
    Graph g1 = RandomGnp(4, 0.5, &rng);
    Graph g2 = RandomGnp(4, 0.5, &rng);
    Structure s1 = GraphToStructure(g1);
    Structure s2 = GraphToStructure(g2);
    bool eq2 = *KEquivalent(&tc, s1, {0}, s2, {0}, 2);
    bool eq1 = *KEquivalent(&tc, s1, {0}, s2, {0}, 1);
    bool eq0 = *KEquivalent(&tc, s1, {0}, s2, {0}, 0);
    EXPECT_TRUE(!eq2 || eq1);
    EXPECT_TRUE(!eq1 || eq0);
  }
}

TEST(MsoTypesTest, TypeDecidesFormulasOfMatchingRank) {
  // If (A, a) ≡MSO_k (B, b) then every φ of qd ≤ k agrees on them.
  Rng rng(TestSeed());
  TypeComputer tc;
  std::vector<FormulaPtr> rank1{HasNeighborQuery("x"), IsolatedQuery("x"),
                                TwoCycleQuery("x")};
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Graph g1 = RandomGnp(4, 0.4, &rng);
    Graph g2 = RandomGnp(4, 0.4, &rng);
    Structure s1 = GraphToStructure(g1);
    Structure s2 = GraphToStructure(g2);
    if (!*KEquivalent(&tc, s1, {0}, s2, {0}, 1)) continue;
    ++checked;
    for (const FormulaPtr& phi : rank1) {
      EXPECT_EQ(*EvaluateUnary(s1, *phi, "x", 0),
                *EvaluateUnary(s2, *phi, "x", 0))
          << ToString(*phi);
    }
  }
  EXPECT_GT(checked, 0);  // the property must actually have been exercised
}

TEST(MsoTypesTest, EqualTuplesSameType) {
  Structure s = GraphToStructure(CycleGraph(5));
  TypeComputer tc;
  auto t1 = tc.ComputeType(s, {0, 1}, 1);
  auto t2 = tc.ComputeType(s, {0, 1}, 1);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(*t1, *t2);
  // Cycle symmetry: (1, 2) has the same rank-1 type as (0, 1).
  auto t3 = tc.ComputeType(s, {1, 2}, 1);
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(*t1, *t3);
}

TEST(MsoTypesTest, BudgetExhaustion) {
  TypeOptions options;
  options.work_budget = 10;
  TypeComputer tc(options);
  Structure s = GraphToStructure(CycleGraph(6));
  EXPECT_EQ(tc.ComputeType(s, {0}, 2).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(MsoTypesTest, MismatchedTupleLengthsRejected) {
  TypeComputer tc;
  Structure s = GraphToStructure(PathGraph(3));
  EXPECT_FALSE(KEquivalent(&tc, s, {0, 1}, s, {0}, 1).ok());
}

}  // namespace
}  // namespace treedl::mso
