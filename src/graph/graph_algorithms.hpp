// Basic graph algorithms: connectivity, components, brute-force coloring.
#ifndef TREEDL_GRAPH_GRAPH_ALGORITHMS_HPP_
#define TREEDL_GRAPH_GRAPH_ALGORITHMS_HPP_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace treedl {

/// Component id per vertex (ids are dense, assigned in BFS discovery order).
std::vector<int> ConnectedComponents(const Graph& graph);

bool IsConnected(const Graph& graph);

/// True iff the vertex set `subset` (given as membership flags) induces a
/// subgraph of `graph` that contains at least one edge.
bool SubsetHasInternalEdge(const Graph& graph, const std::vector<bool>& subset);

/// Backtracking k-coloring oracle. Returns a proper coloring (vertex -> color
/// in [0, k)) or nullopt. Exponential; used as a correctness baseline for the
/// §5.1 dynamic program.
std::optional<std::vector<int>> BruteForceColoring(const Graph& graph, int k);

/// Counts proper k-colorings by exhaustive enumeration. Only call on graphs
/// with at most ~15 vertices.
uint64_t CountColoringsBruteForce(const Graph& graph, int k);

/// Size of a minimum vertex cover, by exhaustive subset search (n <= ~20).
size_t MinVertexCoverBruteForce(const Graph& graph);

/// Size of a maximum independent set, by exhaustive subset search (n <= ~20).
size_t MaxIndependentSetBruteForce(const Graph& graph);

/// Size of a minimum dominating set, by exhaustive subset search (n <= ~20).
size_t MinDominatingSetBruteForce(const Graph& graph);

}  // namespace treedl

#endif  // TREEDL_GRAPH_GRAPH_ALGORITHMS_HPP_
