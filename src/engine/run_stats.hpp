// RunStats: the single per-query statistics record of the Engine API.
//
// Supersedes the scattered per-subsystem out-params (core::DpStats,
// datalog::EvalStats, datalog::GroundingStats): one struct carries build/cache
// counters of the session cache, DP table sizes, datalog fixpoint work, and
// optional per-pass timings. The deprecated free-function signatures keep
// their old stats structs, now populated by forwarding from a RunStats
// computed internally (see engine/compat.cpp).
//
// Header-only on purpose: core/ and datalog/ include this file to fill in
// their slices without linking against the engine library.
#ifndef TREEDL_ENGINE_RUN_STATS_HPP_
#define TREEDL_ENGINE_RUN_STATS_HPP_

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

namespace treedl {

/// Wall-clock time of one named pipeline pass (see engine/pipeline.hpp).
struct PassTiming {
  std::string pass;
  double millis = 0;
};

struct RunStats {
  // --- Session-cache activity ---------------------------------------------
  /// Schema encodings built by this query (0 on a cache hit).
  size_t encode_builds = 0;
  /// Raw tree decompositions built by this query (0 on a cache hit).
  size_t td_builds = 0;
  /// Normalized decompositions built (modified or tuple normal form).
  size_t normalize_builds = 0;
  /// Thm 4.5 MSO-to-datalog constructions run by this query (0 when the
  /// compiled program came from the engine's per-formula cache).
  size_t mso_compile_builds = 0;
  /// Cached artifacts reused instead of rebuilt.
  size_t cache_hits = 0;
  /// Artifacts restored into the session cache from a session file
  /// (Engine::LoadSession) — the "loads" side of loads vs. builds.
  size_t artifact_loads = 0;
  /// Artifacts written out to a session file (Engine::SaveSession).
  size_t artifact_saves = 0;

  // --- Tree-DP work (core::DpStats slice) ---------------------------------
  size_t dp_states = 0;
  size_t dp_max_states_per_node = 0;
  /// Shard tasks run by the parallel DP driver (0 = sequential traversal).
  size_t dp_shards = 0;
  /// Wall-clock per shard task, in shard order. Per-query only: Accumulate
  /// folds it into dp_slowest_shard_millis instead of concatenating, so a
  /// long-lived session's cumulative record stays bounded.
  std::vector<double> dp_shard_millis;
  /// Slowest shard task seen (aggregated form of dp_shard_millis).
  double dp_slowest_shard_millis = 0;
  /// Bottom-up decomposition walks this query executed.
  size_t dp_traversals = 0;
  /// DP state-table passes those walks drove. Solve: 1 traversal / 1 pass;
  /// SolveAll: 1 traversal / 5 passes — the fused-batch evidence.
  size_t dp_passes = 0;
  /// High-water mark of live DP state-table bytes (flat-table arena
  /// footprints summed over all passes). With a table_memory_budget this
  /// stays near the traversal frontier; without one it grows with the whole
  /// decomposition.
  size_t dp_peak_table_bytes = 0;
  /// Dead state tables released mid-run by the eviction protocol (0 unless
  /// EngineOptions::table_memory_budget is set).
  size_t dp_tables_evicted = 0;

  // --- Datalog fixpoint work (datalog::EvalStats slice) -------------------
  size_t eval_iterations = 0;
  size_t derived_facts = 0;
  size_t rule_applications = 0;
  /// Fixpoint rounds run by the semi-naive engine (round 0 + delta rounds).
  /// Unlike eval_iterations — which every backend bumps, naive included —
  /// this counts only the parallel-capable engine's rounds, so a query can
  /// attribute its eval_iterations across backends.
  size_t fixpoint_rounds = 0;
  /// Rule-evaluation task units the semi-naive engine decomposed its rounds
  /// into (one per rule in round 0; one per rule x intensional delta
  /// position x delta batch afterwards). The decomposition depends only on
  /// the program and the data, never on the thread count, so the counter is
  /// identical at num_threads = 1 and 8 — with a pool the units run
  /// concurrently, without one they run in the same order inline.
  size_t fixpoint_rule_tasks = 0;
  /// Join plans compiled by Prepare: one full plan per rule plus one delta
  /// variant per positive intensional body position. A pure function of the
  /// program — identical across backends, thread counts, and repeats.
  size_t plan_compiles = 0;
  /// StepExecutor::Execute invocations by the compiled semi-naive engine —
  /// one per join-plan step entered per prefix binding. When evaluation is
  /// fully compiled this equals the engine's rule_applications contribution
  /// (the interpreted oracle's work measure), and like every fixpoint
  /// counter it is a deterministic function of program + data, never of the
  /// thread count.
  size_t executor_dispatches = 0;

  // --- Anytime decomposition improvement -----------------------------------
  /// Local-search rounds run by Engine::ImproveDecomposition (one WorkBudget
  /// unit each when the call was budgeted — the serving layer's REOPT).
  size_t improve_rounds = 0;

  // --- PRIMALITY enumeration sharding --------------------------------------
  /// Shard tasks run by the two sharded walks (bottom-up solve and top-down
  /// solve↓) of the §5.3 enumeration (0 when the walks ran sequentially).
  size_t primality_shards = 0;

  // --- Grounded-LTUR work (datalog::GroundingStats slice) -----------------
  size_t ground_clauses = 0;
  size_t ground_atoms = 0;
  size_t guard_instantiations = 0;

  // --- Pipeline ------------------------------------------------------------
  /// Per-pass wall-clock timings, in execution order (only filled when
  /// EngineOptions::collect_pass_timings is set, or a pipeline is run with a
  /// non-null stats pointer).
  std::vector<PassTiming> passes;
  /// Total wall-clock time of the query, milliseconds.
  double total_millis = 0;

  /// Folds `other` into this (used for the engine's cumulative stats).
  void Accumulate(const RunStats& other) {
    encode_builds += other.encode_builds;
    td_builds += other.td_builds;
    normalize_builds += other.normalize_builds;
    mso_compile_builds += other.mso_compile_builds;
    cache_hits += other.cache_hits;
    artifact_loads += other.artifact_loads;
    artifact_saves += other.artifact_saves;
    dp_states += other.dp_states;
    dp_max_states_per_node =
        dp_max_states_per_node > other.dp_max_states_per_node
            ? dp_max_states_per_node
            : other.dp_max_states_per_node;
    dp_shards += other.dp_shards;
    double other_slowest = other.dp_slowest_shard_millis;
    for (double ms : other.dp_shard_millis) {
      other_slowest = other_slowest > ms ? other_slowest : ms;
    }
    dp_slowest_shard_millis = dp_slowest_shard_millis > other_slowest
                                  ? dp_slowest_shard_millis
                                  : other_slowest;
    dp_traversals += other.dp_traversals;
    dp_passes += other.dp_passes;
    dp_peak_table_bytes = dp_peak_table_bytes > other.dp_peak_table_bytes
                              ? dp_peak_table_bytes
                              : other.dp_peak_table_bytes;
    dp_tables_evicted += other.dp_tables_evicted;
    eval_iterations += other.eval_iterations;
    derived_facts += other.derived_facts;
    rule_applications += other.rule_applications;
    fixpoint_rounds += other.fixpoint_rounds;
    fixpoint_rule_tasks += other.fixpoint_rule_tasks;
    plan_compiles += other.plan_compiles;
    executor_dispatches += other.executor_dispatches;
    improve_rounds += other.improve_rounds;
    primality_shards += other.primality_shards;
    ground_clauses += other.ground_clauses;
    ground_atoms += other.ground_atoms;
    guard_instantiations += other.guard_instantiations;
    passes.insert(passes.end(), other.passes.begin(), other.passes.end());
    total_millis += other.total_millis;
  }

  /// One-line human-readable rendering (implemented in engine/stats.cpp).
  std::string ToString() const;
};

/// Process-wide build counters, bumped by every Engine (and therefore by every
/// deprecated convenience free function, which forwards into a one-shot
/// Engine). Tests use the deltas to demonstrate the §5.3 amortization
/// argument: N queries on one Engine cost one encoding + one decomposition,
/// N convenience calls cost N of each.
struct EngineCounters {
  std::atomic<size_t> encode_builds{0};
  std::atomic<size_t> td_builds{0};
  std::atomic<size_t> normalize_builds{0};
};

EngineCounters& GlobalEngineCounters();

}  // namespace treedl

#endif  // TREEDL_ENGINE_RUN_STATS_HPP_
