// 3-Colorability (§5.1): the datalog-style DP scales linearly in the data at
// fixed treewidth (Thm 5.1), while brute-force search is exponential. Also
// measures the counting extension.
#include <benchmark/benchmark.h>

#include "core/three_color.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algorithms.hpp"
#include "td/heuristics.hpp"

namespace treedl {
namespace {

// Fixed-treewidth instances of growing size: random partial 3-trees.
Graph Instance(size_t n) {
  Rng rng(n * 2654435761u + 7);
  return RandomPartialKTree(n, 3, 0.8, &rng);
}

void BM_ThreeColorDp(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Graph g = Instance(n);
  // One engine session: the decomposition and normal form are cached, so
  // the loop measures the steady-state DP (the paper's per-query cost).
  EngineOptions options;
  options.extract_witness = false;
  Engine engine = Engine::FromGraph(g, options);
  for (auto _ : state) {
    auto result = engine.Solve(Engine::Problem::kThreeColor);
    TREEDL_CHECK(result.ok());
    benchmark::DoNotOptimize(result->feasible);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ThreeColorDp)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_ThreeColorBruteForce(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Graph g = Instance(n);
  for (auto _ : state) {
    auto coloring = BruteForceColoring(g, 3);
    benchmark::DoNotOptimize(coloring.has_value());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
// Backtracking happens to be fast on colorable instances; keep sizes small
// so hard (uncolorable) draws do not stall the harness.
BENCHMARK(BM_ThreeColorBruteForce)->DenseRange(10, 22, 4);

void BM_ThreeColorCounting(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Engine engine = Engine::FromGraph(Instance(n));
  for (auto _ : state) {
    auto count = engine.Solve(Engine::Problem::kThreeColorCount);
    TREEDL_CHECK(count.ok());
    benchmark::DoNotOptimize(count->count);
  }
}
BENCHMARK(BM_ThreeColorCounting)->RangeMultiplier(2)->Range(16, 256);

void BM_ThreeColorWitnessExtraction(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Engine engine = Engine::FromGraph(Instance(n));
  for (auto _ : state) {
    auto result = engine.Solve(Engine::Problem::kThreeColor);
    TREEDL_CHECK(result.ok());
    benchmark::DoNotOptimize(result->witness);
  }
}
BENCHMARK(BM_ThreeColorWitnessExtraction)->Arg(64)->Arg(256);

}  // namespace
}  // namespace treedl

BENCHMARK_MAIN();
