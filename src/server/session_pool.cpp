#include "server/session_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/fault_injection.hpp"
#include "common/string_util.hpp"

namespace treedl::server {

namespace {

bool FileExists(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

}  // namespace

SessionPool::SessionPool(SessionPoolOptions options)
    : options_(std::move(options)) {
  if (options_.max_sessions == 0) options_.max_sessions = 1;
  if (options_.table_memory_budget > 0) {
    options_.engine_options.table_memory_budget = options_.table_memory_budget;
  }
}

SessionPool::Lease SessionPool::MakeLeaseLocked(Entry& entry,
                                                uint64_t fingerprint, bool hit,
                                                bool warm_loaded,
                                                size_t artifact_loads) {
  entry.leases->fetch_add(1, std::memory_order_acq_rel);
  Lease lease{entry.engine, fingerprint, hit, warm_loaded, artifact_loads,
              /*pin=*/nullptr};
  std::shared_ptr<std::atomic<size_t>> count = entry.leases;
  // The pin's deleter runs exactly once, when the last copy of the lease
  // dies. It captures the counter by shared_ptr, not the pool, so a lease
  // outliving the pool (or its entry's eviction) stays safe.
  lease.pin = std::shared_ptr<void>(
      static_cast<void*>(nullptr), [count](void*) {
        count->fetch_sub(1, std::memory_order_acq_rel);
      });
  return lease;
}

StatusOr<SessionPool::Lease> SessionPool::Acquire(const Structure& structure) {
  uint64_t fingerprint = Engine::FingerprintOf(structure);
  size_t estimate = Engine::EstimateStructureBytes(structure);
  std::unique_lock<std::mutex> lock(mu_);

  bool waited = false;
  while (true) {
    if (waited) {
      // The build this thread waited on may have failed: consume one share
      // of the recorded failure and return it. Only threads that actually
      // waited consume shares — a fresh Acquire skips the record and retries
      // the build itself, so a transient failure costs exactly one retry.
      auto failed = build_failures_.find(fingerprint);
      if (failed != build_failures_.end()) {
        Status failure = failed->second.status;
        if (--failed->second.remaining == 0) build_failures_.erase(failed);
        return failure;
      }
    }
    auto it = sessions_.find(fingerprint);
    if (it != sessions_.end()) {
      ++counters_.hits;
      it->second.last_used = ++clock_;
      return MakeLeaseLocked(it->second, fingerprint, /*hit=*/true,
                             /*warm_loaded=*/false, /*artifact_loads=*/0);
    }
    auto build = builds_.find(fingerprint);
    if (build == builds_.end()) break;
    // Another thread is building this very session: wait for its insert
    // rather than building a second copy.
    if (!waited) {
      waited = true;
      ++counters_.build_waits;
      ++build->second.waiters;
    }
    build_cv_.wait(lock);
  }

  ++counters_.misses;
  if (options_.table_memory_budget > 0 &&
      estimate > options_.table_memory_budget) {
    ++counters_.rejections;
    return Status::ResourceExhausted(
        "structure estimate " + std::to_string(estimate) +
        "B exceeds the shared table_memory_budget " +
        std::to_string(options_.table_memory_budget) + "B");
  }
  while (sessions_.size() + builds_.size() >= options_.max_sessions ||
         (options_.table_memory_budget > 0 &&
          ChargedBytesLocked() + estimate > options_.table_memory_budget)) {
    if (!EvictOneLocked()) {
      ++counters_.rejections;
      return Status::ResourceExhausted(
          "session pool: every resident session is in use (" +
          std::to_string(sessions_.size()) + " resident, " +
          std::to_string(ChargedBytesLocked()) + "B charged)");
    }
  }

  // Reserve the slot and the byte estimate, then build OUTSIDE the lock: one
  // cold tenant's construction + warm-load I/O must not block every other
  // tenant's Acquire. The builds_ latch keeps concurrent acquires of this
  // fingerprint from building twice.
  builds_.emplace(fingerprint, BuildState{estimate, /*waiters=*/0});
  lock.unlock();

  Status build_status = TREEDL_FAULT_POINT("session_pool.build");
  std::shared_ptr<Engine> engine;
  bool warm_loaded = false;
  bool quarantined = false;
  size_t artifact_loads = 0;
  if (build_status.ok()) {
    engine = std::make_shared<Engine>(structure, options_.engine_options);
    if (!options_.session_dir.empty()) {
      std::string path = SessionFilePath(fingerprint);
      if (FileExists(path)) {
        RunStats load_stats;
        Status loaded = engine->LoadSession(path, &load_stats);
        if (loaded.ok()) {
          warm_loaded = true;
          artifact_loads = load_stats.artifact_loads;
        } else {
          // A corrupt, truncated, or fault-injected file must not fail the
          // request — the session starts cold and rebuilds. Quarantine the
          // file to "<path>.corrupt" so the damage is kept for inspection
          // and the next acquire does not re-read it (a later SAVE writes a
          // fresh, healthy file at the original path).
          std::rename(path.c_str(), (path + ".corrupt").c_str());
          quarantined = true;
        }
      }
    }
  }

  if (!build_status.ok()) {
    // Failed build: release the reserved slot and hand the failure to every
    // thread that waited on this latch — each consumes one share, so nobody
    // hangs on the condition variable and nobody re-runs the failed build on
    // this request's behalf. The next fresh Acquire retries exactly once.
    lock.lock();
    auto build = builds_.find(fingerprint);
    size_t waiters = build != builds_.end() ? build->second.waiters : 0;
    if (build != builds_.end()) builds_.erase(build);
    if (waiters > 0) {
      BuildFailure& failure = build_failures_[fingerprint];
      failure.status = build_status;
      failure.remaining += waiters;
    }
    build_cv_.notify_all();
    return build_status;
  }

  size_t resident_bytes = engine->ResidentArtifactBytes();

  lock.lock();
  builds_.erase(fingerprint);
  if (warm_loaded) ++counters_.warm_loads;
  if (quarantined) ++counters_.quarantines;
  Entry entry;
  entry.engine = std::move(engine);
  entry.leases = std::make_shared<std::atomic<size_t>>(0);
  entry.estimate = estimate;
  entry.charge = std::max(estimate, resident_bytes);
  entry.last_used = ++clock_;
  auto [pos, inserted] = sessions_.emplace(fingerprint, std::move(entry));
  build_cv_.notify_all();
  return MakeLeaseLocked(pos->second, fingerprint, /*hit=*/false, warm_loaded,
                         artifact_loads);
}

void SessionPool::RefreshCharge(uint64_t fingerprint) {
  std::shared_ptr<Engine> engine;
  size_t estimate = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(fingerprint);
    if (it == sessions_.end()) return;
    engine = it->second.engine;
    estimate = it->second.estimate;
  }
  // Measure outside the pool lock: ResidentArtifactBytes takes the engine's
  // cache mutex, which a long build may hold — the pool must stay responsive.
  size_t resident = engine->ResidentArtifactBytes();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(fingerprint);
  if (it == sessions_.end() || it->second.engine != engine) return;
  // Recompute, never ratchet: a session whose tables were evicted gives its
  // charge back to the admission budget (the estimate stays a floor).
  it->second.charge = std::max(estimate, resident);
}

Status SessionPool::Save(uint64_t fingerprint, RunStats* stats) {
  std::shared_ptr<Engine> engine;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(fingerprint);
    if (it != sessions_.end()) engine = it->second.engine;
  }
  if (engine == nullptr) {
    return Status::NotFound("no resident session for fingerprint " +
                            Hex16(fingerprint));
  }
  if (options_.session_dir.empty()) {
    return Status::InvalidArgument(
        "SAVE requires the server to run with a session directory");
  }
  return engine->SaveSession(SessionFilePath(fingerprint), stats);
}

std::shared_ptr<Engine> SessionPool::Peek(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(fingerprint);
  return it == sessions_.end() ? nullptr : it->second.engine;
}

bool SessionPool::IsResident(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.find(fingerprint) != sessions_.end();
}

size_t SessionPool::ActiveLeases(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(fingerprint);
  if (it == sessions_.end()) return 0;
  return it->second.leases->load(std::memory_order_acquire);
}

std::string SessionPool::SessionFilePath(uint64_t fingerprint) const {
  if (options_.session_dir.empty()) return "";
  return options_.session_dir + "/" + Hex16(fingerprint) + ".tdls";
}

SessionPoolCounters SessionPool::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t SessionPool::NumResident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

size_t SessionPool::ChargedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ChargedBytesLocked();
}

std::vector<uint64_t> SessionPool::LruFingerprints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, uint64_t>> order;  // {last_used, fp}
  order.reserve(sessions_.size());
  for (const auto& [fingerprint, entry] : sessions_) {
    order.emplace_back(entry.last_used, fingerprint);
  }
  std::sort(order.begin(), order.end());
  std::vector<uint64_t> fingerprints;
  fingerprints.reserve(order.size());
  for (const auto& [used, fingerprint] : order) {
    fingerprints.push_back(fingerprint);
  }
  return fingerprints;
}

size_t SessionPool::ChargedBytesLocked() const {
  size_t total = 0;
  for (const auto& [fingerprint, entry] : sessions_) total += entry.charge;
  // Builds in flight have reserved their estimate against the budget.
  for (const auto& [fingerprint, build] : builds_) total += build.estimate;
  return total;
}

bool SessionPool::EvictOneLocked() {
  auto victim = sessions_.end();
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    // A zero lease count means no Acquire is outstanding — the session is
    // idle. Leased sessions are never evicted mid-request. (use_count on the
    // engine pointer would also count Peek copies and lease copies on other
    // threads, so it is not the lease truth.)
    if (it->second.leases->load(std::memory_order_acquire) > 0) continue;
    if (victim == sessions_.end() ||
        it->second.last_used < victim->second.last_used) {
      victim = it;
    }
  }
  if (victim == sessions_.end()) return false;
  sessions_.erase(victim);
  ++counters_.evictions;
  return true;
}

}  // namespace treedl::server
