// Scaling of the bag-sharded parallel tree DP: one partial k-tree instance
// large enough to shard, the same Solve queries at num_threads = 1/2/4/...,
// wall-clock and speedup per thread count. The num_threads = 1 row is the
// sequential driver (no pool, no sharding pass); every other row runs
// RunTreeDpSharded on a work-stealing pool. Table caches are warmed before
// timing so the rows compare pure DP traversals, not decomposition builds.
//
// The sharding rows also print the modeled load balance of node-count vs
// cost-aware sharding (slowest shard cost / mean shard cost) — a
// deterministic, machine-independent view of why the cost model exists:
// under node-count sharding the wide-bag root region dominates the critical
// path even when every shard has the same node count.
//
// Flags: --quick shrinks the instance for CI; --json <path> writes the
// deterministic counters (shard counts, balance ratios, states, table
// bytes — no wall-clock, so a 1-CPU runner produces comparable artifacts).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "td/normalize.hpp"
#include "td/shard.hpp"

namespace treedl {
namespace {

struct BenchConfig {
  size_t vertices = 3000;
  int treewidth = 6;
  double keep_probability = 0.55;
  uint64_t seed = 20260727;
  int repeats = 3;
  const char* json_path = nullptr;
};

double TimeSolves(const BenchConfig& config, Engine& engine,
                  RunStats* last_run) {
  Timer timer;
  for (int repeat = 0; repeat < config.repeats; ++repeat) {
    auto vc = engine.Solve(Engine::Problem::kVertexCover, last_run);
    TREEDL_CHECK(vc.ok()) << vc.status();
    auto count = engine.Solve(Engine::Problem::kThreeColorCount);
    TREEDL_CHECK(count.ok()) << count.status();
  }
  return timer.ElapsedMillis();
}

struct Balance {
  size_t shards = 0;
  double slowest_over_mean = 0;
};

/// Modeled cost balance of `sharding`: slowest shard cost / mean shard cost,
/// with every shard's cost recomputed under EstimateNodeCost so node-count
/// and cost-aware shardings are compared under the same work model.
Balance ModeledBalance(const NormalizedTreeDecomposition& ntd,
                       const BagSharding& sharding) {
  Balance out;
  out.shards = sharding.NumShards();
  if (out.shards == 0) return out;
  uint64_t total = 0;
  uint64_t slowest = 0;
  for (const BagShard& shard : sharding.shards) {
    uint64_t cost = 0;
    for (TdNodeId id : shard.nodes) cost += EstimateNodeCost(ntd.node(id));
    total += cost;
    slowest = std::max(slowest, cost);
  }
  double mean = static_cast<double>(total) / static_cast<double>(out.shards);
  out.slowest_over_mean = static_cast<double>(slowest) / mean;
  return out;
}

void RunParallelDpBench(const BenchConfig& config) {
  Rng rng(config.seed);
  Graph graph = RandomPartialKTree(config.vertices, config.treewidth,
                                   config.keep_probability, &rng);
  std::printf("parallel tree DP: partial %d-tree, n=%zu, keep=%.2f "
              "(%d x {VC, #3COL} per row)\n",
              config.treewidth, config.vertices, config.keep_probability,
              config.repeats);
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  // Deterministic sharding-balance comparison on the session's normal form.
  Balance by_nodes;
  Balance by_cost;
  {
    Engine engine = Engine::FromGraph(graph);
    auto td = engine.Decomposition();
    TREEDL_CHECK(td.ok()) << td.status();
    auto ntd = Normalize(**td);
    TREEDL_CHECK(ntd.ok()) << ntd.status();
    constexpr size_t kTargetShards = 16;  // 4 threads x 4 shards/thread
    by_nodes = ModeledBalance(*ntd, ComputeBagSharding(*ntd, kTargetShards));
    by_cost =
        ModeledBalance(*ntd, ComputeBagShardingByCost(*ntd, kTargetShards));
    std::printf("sharding balance (slowest/mean modeled cost, target %zu): "
                "by-node-count %.2fx over %zu shards, cost-aware %.2fx over "
                "%zu shards\n\n",
                kTargetShards, by_nodes.slowest_over_mean, by_nodes.shards,
                by_cost.slowest_over_mean, by_cost.shards);
  }

  std::printf("%8s %8s %10s %8s %10s %14s\n", "threads", "shards", "time ms",
              "speedup", "states", "slowest shard");

  double baseline = 0;
  RunStats parallel_run;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    EngineOptions options;
    options.num_threads = threads;
    options.extract_witness = false;
    Engine engine = Engine::FromGraph(graph, options);
    // Warm the session caches (decomposition, normal form, sharding).
    auto warm = engine.Solve(Engine::Problem::kVertexCover);
    TREEDL_CHECK(warm.ok()) << warm.status();

    RunStats run;
    double ms = TimeSolves(config, engine, &run);
    if (threads == 1) baseline = ms;
    if (threads == 4) parallel_run = run;
    double slowest = 0;
    for (double shard_ms : run.dp_shard_millis) {
      slowest = std::max(slowest, shard_ms);
    }
    std::printf("%8zu %8zu %10.1f %7.2fx %10zu %12.1fms\n", threads,
                run.dp_shards, ms, baseline / ms, run.dp_states, slowest);
  }
  std::printf("\n(speedup needs real cores: on a single-hardware-thread "
              "machine every row\n degenerates to time-sliced execution and "
              "the ratio stays ~1x)\n");

  if (config.json_path != nullptr) {
    FILE* out = std::fopen(config.json_path, "w");
    TREEDL_CHECK(out != nullptr) << "cannot open " << config.json_path;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"parallel_dp\",\n"
                 "  \"vertices\": %zu,\n"
                 "  \"treewidth\": %d,\n"
                 "  \"seed\": %llu,\n"
                 "  \"dp_states\": %zu,\n"
                 "  \"dp_shards\": %zu,\n"
                 "  \"peak_table_bytes\": %zu,\n"
                 "  \"balance_by_node_count\": %.4f,\n"
                 "  \"balance_by_cost\": %.4f,\n"
                 "  \"shards_by_node_count\": %zu,\n"
                 "  \"shards_by_cost\": %zu\n"
                 "}\n",
                 config.vertices, config.treewidth,
                 static_cast<unsigned long long>(config.seed),
                 parallel_run.dp_states, parallel_run.dp_shards,
                 parallel_run.dp_peak_table_bytes,
                 by_nodes.slowest_over_mean, by_cost.slowest_over_mean,
                 by_nodes.shards, by_cost.shards);
    std::fclose(out);
    std::printf("  wrote %s\n", config.json_path);
  }
}

}  // namespace
}  // namespace treedl

int main(int argc, char** argv) {
  treedl::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.vertices = 600;
      config.repeats = 1;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    }
  }
  treedl::RunParallelDpBench(config);
  return 0;
}
