#include "structure/structure_io.hpp"


#include "common/string_util.hpp"

namespace treedl {

namespace {

// Parses "pred(a, b)" into name + args. Returns ParseError on malformed input.
Status ParseAtomText(std::string_view text, std::string* name,
                     std::vector<std::string>* args) {
  size_t open = text.find('(');
  if (open == std::string_view::npos) {
    // Zero-arity atom: bare identifier.
    std::string_view ident = Trim(text);
    if (!IsIdentifier(ident)) {
      return Status::ParseError("malformed atom: " + std::string(text));
    }
    *name = std::string(ident);
    args->clear();
    return Status::OK();
  }
  size_t close = text.rfind(')');
  if (close == std::string_view::npos || close < open) {
    return Status::ParseError("unbalanced parentheses in atom: " +
                              std::string(text));
  }
  std::string_view ident = Trim(text.substr(0, open));
  if (!IsIdentifier(ident)) {
    return Status::ParseError("malformed predicate name: " + std::string(text));
  }
  *name = std::string(ident);
  args->clear();
  std::string_view inner = text.substr(open + 1, close - open - 1);
  if (Trim(inner).empty()) return Status::OK();
  for (const std::string& piece : Split(inner, ',')) {
    std::string_view arg = Trim(piece);
    if (!IsIdentifier(arg)) {
      return Status::ParseError("malformed argument '" + std::string(arg) +
                                "' in atom: " + std::string(text));
    }
    args->emplace_back(arg);
  }
  return Status::OK();
}

}  // namespace

StatusOr<Structure> ParseStructure(const Signature& signature,
                                   const std::string& text) {
  Structure structure(signature);
  int line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    size_t comment = line.find('%');
    if (comment != std::string_view::npos) line = Trim(line.substr(0, comment));
    if (line.empty()) continue;
    if (line.back() != '.') {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected trailing '.'");
    }
    // Several '.'-terminated facts may share a line; identifiers cannot
    // contain '.', so splitting on it is unambiguous.
    for (const std::string& piece : Split(line, '.')) {
      std::string_view stmt = Trim(piece);
      if (stmt.empty()) continue;
      std::string name;
      std::vector<std::string> args;
      Status st = ParseAtomText(stmt, &name, &args);
      if (!st.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  st.message());
      }
      if (name == "element") {
        if (args.size() != 1) {
          return Status::ParseError("line " + std::to_string(line_no) +
                                    ": element/1 expects one argument");
        }
        structure.AddElement(args[0]);
        continue;
      }
      st = structure.AddFactNamed(name, args);
      if (!st.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  st.ToString());
      }
    }
  }
  return structure;
}

std::string FormatStructure(const Structure& structure) {
  std::string out;
  // Declare every element up front, in id order, so that a parse round-trip
  // reproduces the domain *and* the id assignment exactly (facts alone would
  // intern elements in predicate order instead).
  for (ElementId e = 0; e < structure.NumElements(); ++e) {
    out += "element(" + structure.ElementName(e) + ").\n";
  }
  for (const Fact& fact : structure.AllFacts()) {
    out += structure.signature().name(fact.predicate);
    if (!fact.args.empty()) {
      out += "(";
      for (size_t i = 0; i < fact.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += structure.ElementName(fact.args[i]);
      }
      out += ")";
    }
    out += ".\n";
  }
  return out;
}

}  // namespace treedl
