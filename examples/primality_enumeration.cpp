// PRIMALITY enumeration (§5.3) on a Table 1-scale instance: 31 FDs and 93
// attributes in a balanced width-3 decomposition, far beyond the reach of
// exponential methods, solved by one bottom-up + one top-down pass.
#include <iostream>

#include "common/timer.hpp"
#include "core/primality_enum.hpp"
#include "schema/generators.hpp"

int main() {
  using namespace treedl;
  BalancedInstance inst = GenerateBalancedInstance(31);
  std::cout << "Balanced §6 instance: " << inst.schema.NumAttributes()
            << " attributes, " << inst.schema.NumFds()
            << " FDs, decomposition width " << inst.td.Width() << " with "
            << inst.td.NumNodes() << " raw nodes\n";

  Timer timer;
  core::DpStats stats;
  auto primes = core::EnumeratePrimes(inst.schema, inst.encoding, inst.td,
                                      &stats);
  double ms = timer.ElapsedMillis();
  if (!primes.ok()) {
    std::cerr << "enumeration failed: " << primes.status() << "\n";
    return 1;
  }
  size_t count = 0;
  for (bool p : *primes) count += p;
  std::cout << "Enumerated primes in " << ms << " ms (" << count << " of "
            << primes->size() << " attributes are prime; "
            << stats.total_states << " solve() facts materialized, max "
            << stats.max_states_per_node << " per node)\n";

  std::cout << "Sample: ";
  for (const char* name : {"x1", "y1", "z1", "x7", "z31"}) {
    auto a = inst.schema.AttributeByName(name);
    if (a.ok()) {
      std::cout << name << "="
                << ((*primes)[static_cast<size_t>(*a)] ? "prime" : "non-prime")
                << "  ";
    }
  }
  std::cout << "\n(expected: every x*/y* prime, every z* non-prime)\n";
  return 0;
}
