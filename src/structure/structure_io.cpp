#include "structure/structure_io.hpp"


#include "common/string_util.hpp"

namespace treedl {

namespace {

// Parses "pred(a, b)" into name + args. Returns ParseError on malformed input.
Status ParseAtomText(std::string_view text, std::string* name,
                     std::vector<std::string>* args) {
  size_t open = text.find('(');
  if (open == std::string_view::npos) {
    // Zero-arity atom: bare identifier.
    std::string_view ident = Trim(text);
    if (!IsIdentifier(ident)) {
      return Status::ParseError("malformed atom: " + std::string(text));
    }
    *name = std::string(ident);
    args->clear();
    return Status::OK();
  }
  size_t close = text.rfind(')');
  if (close == std::string_view::npos || close < open) {
    return Status::ParseError("unbalanced parentheses in atom: " +
                              std::string(text));
  }
  std::string_view ident = Trim(text.substr(0, open));
  if (!IsIdentifier(ident)) {
    return Status::ParseError("malformed predicate name: " + std::string(text));
  }
  *name = std::string(ident);
  args->clear();
  std::string_view inner = text.substr(open + 1, close - open - 1);
  if (Trim(inner).empty()) return Status::OK();
  for (const std::string& piece : Split(inner, ',')) {
    std::string_view arg = Trim(piece);
    if (!IsIdentifier(arg)) {
      return Status::ParseError("malformed argument '" + std::string(arg) +
                                "' in atom: " + std::string(text));
    }
    args->emplace_back(arg);
  }
  return Status::OK();
}

}  // namespace

StatusOr<Structure> ParseStructure(const Signature& signature,
                                   const std::string& text) {
  Structure structure(signature);
  int line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    size_t comment = line.find('%');
    if (comment != std::string_view::npos) line = Trim(line.substr(0, comment));
    if (line.empty()) continue;
    if (line.back() != '.') {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected trailing '.'");
    }
    // Several '.'-terminated facts may share a line; identifiers cannot
    // contain '.', so splitting on it is unambiguous.
    for (const std::string& piece : Split(line, '.')) {
      std::string_view stmt = Trim(piece);
      if (stmt.empty()) continue;
      std::string name;
      std::vector<std::string> args;
      Status st = ParseAtomText(stmt, &name, &args);
      if (!st.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  st.message());
      }
      if (name == "element") {
        if (args.size() != 1) {
          return Status::ParseError("line " + std::to_string(line_no) +
                                    ": element/1 expects one argument");
        }
        structure.AddElement(args[0]);
        continue;
      }
      st = structure.AddFactNamed(name, args);
      if (!st.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  st.ToString());
      }
    }
  }
  return structure;
}

std::string FormatStructure(const Structure& structure) {
  std::string out;
  // Declare every element up front, in id order, so that a parse round-trip
  // reproduces the domain *and* the id assignment exactly (facts alone would
  // intern elements in predicate order instead).
  for (ElementId e = 0; e < structure.NumElements(); ++e) {
    out += "element(" + structure.ElementName(e) + ").\n";
  }
  for (const Fact& fact : structure.AllFacts()) {
    out += structure.signature().name(fact.predicate);
    if (!fact.args.empty()) {
      out += "(";
      for (size_t i = 0; i < fact.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += structure.ElementName(fact.args[i]);
      }
      out += ")";
    }
    out += ".\n";
  }
  return out;
}

void SerializeStructure(const Structure& structure, BinaryWriter* writer) {
  const Signature& sig = structure.signature();
  writer->U64(static_cast<uint64_t>(sig.size()));
  for (PredicateId p = 0; p < sig.size(); ++p) {
    writer->Str(sig.name(p));
    writer->I32(sig.arity(p));
  }
  writer->U64(structure.NumElements());
  for (ElementId e = 0; e < structure.NumElements(); ++e) {
    writer->Str(structure.ElementName(e));
  }
  for (PredicateId p = 0; p < sig.size(); ++p) {
    const auto& tuples = structure.Relation(p);
    writer->U64(tuples.size());
    for (const Tuple& t : tuples) {
      for (ElementId e : t) writer->U32(e);
    }
  }
}

StatusOr<Structure> DeserializeStructure(BinaryReader* reader) {
  size_t num_predicates = 0;
  TREEDL_RETURN_IF_ERROR(reader->Length(&num_predicates, 8 + 4));
  std::vector<std::pair<std::string, int>> predicates;
  predicates.reserve(num_predicates);
  for (size_t p = 0; p < num_predicates; ++p) {
    std::string name;
    int32_t arity = 0;
    TREEDL_RETURN_IF_ERROR(reader->Str(&name));
    TREEDL_RETURN_IF_ERROR(reader->I32(&arity));
    if (arity < 0) {
      return Status::ParseError("structure: negative predicate arity");
    }
    predicates.emplace_back(std::move(name), arity);
  }
  TREEDL_ASSIGN_OR_RETURN(Signature signature,
                          Signature::Make(std::move(predicates)));

  Structure structure(signature);
  size_t num_elements = 0;
  TREEDL_RETURN_IF_ERROR(reader->Length(&num_elements, 8));
  for (size_t e = 0; e < num_elements; ++e) {
    std::string name;
    TREEDL_RETURN_IF_ERROR(reader->Str(&name));
    // Names were written in id order; re-interning must reproduce dense ids
    // (a duplicate name would silently shift every later id).
    if (structure.AddElement(name) != static_cast<ElementId>(e)) {
      return Status::ParseError("structure: duplicate element name '" + name +
                                "'");
    }
  }
  for (PredicateId p = 0; p < signature.size(); ++p) {
    size_t arity = static_cast<size_t>(signature.arity(p));
    size_t num_tuples = 0;
    TREEDL_RETURN_IF_ERROR(reader->Length(&num_tuples, arity * 4));
    for (size_t t = 0; t < num_tuples; ++t) {
      Tuple args(arity);
      for (size_t i = 0; i < arity; ++i) {
        TREEDL_RETURN_IF_ERROR(reader->U32(&args[i]));
      }
      TREEDL_RETURN_IF_ERROR(structure.AddFact(p, std::move(args)));
    }
  }
  return structure;
}

}  // namespace treedl
