#include "datalog/analysis.hpp"

#include <algorithm>
#include <set>

namespace treedl::datalog {

namespace {

std::set<VariableId> AtomVars(const Atom& atom) {
  std::set<VariableId> vars;
  for (const Term& t : atom.args) {
    if (t.IsVar()) vars.insert(t.variable);
  }
  return vars;
}

std::set<VariableId> RuleVars(const Rule& rule) {
  std::set<VariableId> vars = AtomVars(rule.head);
  for (const Literal& lit : rule.body) {
    for (VariableId v : AtomVars(lit.atom)) vars.insert(v);
  }
  return vars;
}

}  // namespace

StatusOr<ProgramInfo> AnalyzeProgram(const Program& program) {
  ProgramInfo info;
  info.intensional.assign(static_cast<size_t>(program.signature().size()),
                          false);
  for (const Rule& rule : program.rules()) {
    info.intensional[static_cast<size_t>(rule.head.predicate)] = true;
  }
  info.is_monadic = true;
  for (PredicateId p = 0; p < program.signature().size(); ++p) {
    if (info.intensional[static_cast<size_t>(p)] &&
        program.signature().arity(p) > 1) {
      info.is_monadic = false;
    }
  }

  for (size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    std::string where = "rule " + std::to_string(r) + " (" +
                        program.RuleToString(rule) + ")";
    // Facts must be ground (checked at parse time too, but programs can be
    // built programmatically).
    if (rule.body.empty()) {
      for (const Term& t : rule.head.args) {
        if (t.IsVar()) {
          return Status::InvalidArgument(where + ": fact with variable");
        }
      }
      info.plans.emplace_back();
      continue;
    }
    // Negation only on extensional predicates (semipositive datalog).
    for (const Literal& lit : rule.body) {
      if (!lit.positive &&
          info.intensional[static_cast<size_t>(lit.atom.predicate)]) {
        return Status::InvalidArgument(
            where + ": negation of intensional predicate " +
            program.signature().name(lit.atom.predicate));
      }
    }
    // Range restriction: head variables occur in some positive body literal.
    std::set<VariableId> positive_vars;
    for (const Literal& lit : rule.body) {
      if (!lit.positive) continue;
      for (VariableId v : AtomVars(lit.atom)) positive_vars.insert(v);
    }
    for (VariableId v : AtomVars(rule.head)) {
      if (!positive_vars.count(v)) {
        return Status::InvalidArgument(
            where + ": head variable " + program.VariableName(v) +
            " not bound by a positive body literal");
      }
    }
    // Greedy safe plan.
    std::vector<size_t> plan;
    std::vector<bool> used(rule.body.size(), false);
    std::set<VariableId> bound;
    while (plan.size() < rule.body.size()) {
      int best = -1;
      size_t best_score = 0;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (used[i]) continue;
        const Literal& lit = rule.body[i];
        size_t bound_args = 0;
        bool all_bound = true;
        for (const Term& t : lit.atom.args) {
          if (!t.IsVar() || bound.count(t.variable)) {
            ++bound_args;
          } else {
            all_bound = false;
          }
        }
        if (!lit.positive && !all_bound) continue;  // negatives wait
        // Prefer fully bound negatives early (cheap filters), then positive
        // intensional literals (the semi-naive delta literal must sit at
        // plan position 0 for delta batching to split it into range tasks),
        // then the positive literal with the most bound arguments. Arity is
        // capped well below the tier gaps, so the tiers never mix.
        size_t score = bound_args + (lit.positive ? 0 : 1000);
        if (lit.positive &&
            info.intensional[static_cast<size_t>(lit.atom.predicate)]) {
          score += 500;
        }
        if (best == -1 || score > best_score) {
          best = static_cast<int>(i);
          best_score = score;
        }
      }
      if (best == -1) {
        return Status::InvalidArgument(
            where + ": no safe evaluation order (negative literal over "
                    "variables never bound positively)");
      }
      used[static_cast<size_t>(best)] = true;
      plan.push_back(static_cast<size_t>(best));
      for (VariableId v : AtomVars(rule.body[static_cast<size_t>(best)].atom)) {
        bound.insert(v);
      }
    }
    info.plans.push_back(std::move(plan));
  }
  return info;
}

StatusOr<std::vector<size_t>> FindQuasiGuards(const Program& program) {
  TREEDL_ASSIGN_OR_RETURN(ProgramInfo info, AnalyzeProgram(program));
  const Signature& sig = program.signature();
  auto pred_named = [&](const Atom& atom, const char* name) {
    return sig.name(atom.predicate) == name;
  };

  std::vector<size_t> guards;
  for (size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    if (rule.body.empty()) {
      guards.push_back(0);  // facts are trivially guarded
      continue;
    }
    std::set<VariableId> all_vars = RuleVars(rule);
    int found = -1;
    for (size_t g = 0; g < rule.body.size() && found < 0; ++g) {
      const Literal& guard = rule.body[g];
      if (!guard.positive ||
          info.intensional[static_cast<size_t>(guard.atom.predicate)]) {
        continue;
      }
      // Closure of guard variables under the τ_td functional dependencies.
      std::set<VariableId> determined = AtomVars(guard.atom);
      bool changed = true;
      while (changed) {
        changed = false;
        for (const Literal& lit : rule.body) {
          if (!lit.positive) continue;
          const auto& args = lit.atom.args;
          if ((pred_named(lit.atom, "child1") ||
               pred_named(lit.atom, "child2")) &&
              args.size() == 2 && args[0].IsVar() && args[1].IsVar()) {
            bool has0 = determined.count(args[0].variable) > 0;
            bool has1 = determined.count(args[1].variable) > 0;
            if (has0 != has1) {
              determined.insert(has0 ? args[1].variable : args[0].variable);
              changed = true;
            }
          } else if (pred_named(lit.atom, "bag") && !args.empty() &&
                     args[0].IsVar() &&
                     determined.count(args[0].variable) > 0) {
            for (size_t i = 1; i < args.size(); ++i) {
              if (args[i].IsVar() &&
                  determined.insert(args[i].variable).second) {
                changed = true;
              }
            }
          }
        }
      }
      if (std::includes(determined.begin(), determined.end(), all_vars.begin(),
                        all_vars.end())) {
        found = static_cast<int>(g);
      }
    }
    if (found < 0) {
      return Status::InvalidArgument(
          "rule " + std::to_string(r) + " (" + program.RuleToString(rule) +
          ") has no quasi-guard");
    }
    guards.push_back(static_cast<size_t>(found));
  }
  return guards;
}

Status CheckQuasiGuarded(const Program& program) {
  return FindQuasiGuards(program).status();
}

}  // namespace treedl::datalog
