#include "schema/primality_bruteforce.hpp"

#include "common/logging.hpp"
#include "schema/closure.hpp"

namespace treedl {

bool IsPrimeBruteForce(const Schema& schema, AttributeId a) {
  int n = schema.NumAttributes();
  TREEDL_CHECK(a >= 0 && a < n);
  TREEDL_CHECK(n <= 24) << "brute-force primality limited to 24 attributes";
  // Enumerate Y over subsets of R \ {a}. It suffices to test Y := S⁺ for each
  // subset S (every closed candidate arises this way), checking a ∉ S⁺ and
  // (S⁺ ∪ {a})⁺ = R.
  std::vector<AttributeId> others;
  for (AttributeId b = 0; b < n; ++b) {
    if (b != a) others.push_back(b);
  }
  size_t m = others.size();
  for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
    AttrSet s(static_cast<size_t>(n), false);
    for (size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1) s[static_cast<size_t>(others[i])] = true;
    }
    AttrSet y = Closure(schema, s);
    if (y[static_cast<size_t>(a)]) continue;  // a ∈ Y: not a witness
    AttrSet with_a = y;
    with_a[static_cast<size_t>(a)] = true;
    if (IsSuperkey(schema, with_a)) return true;
  }
  return false;
}

std::vector<bool> AllPrimesBruteForce(const Schema& schema) {
  std::vector<bool> primes(static_cast<size_t>(schema.NumAttributes()), false);
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    primes[static_cast<size_t>(a)] = IsPrimeBruteForce(schema, a);
  }
  return primes;
}

}  // namespace treedl
