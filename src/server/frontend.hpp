// treedl::server::Frontend — the concurrent driver of a Server.
//
// Server::Serve handles one request at a time. The front-end turns the same
// Server into a pipelined, multi-threaded driver while keeping scripted
// transcripts byte-for-byte identical at ANY thread count:
//
//   dispatch   One thread (the Serve caller) reads lines in order, assigns
//              each request a dense sequence number, and runs the sequential
//              stage: parsing, tenant mutation, and Server::PrepareCompute —
//              so every pool acquire, LRU tick, hit/miss count, and
//              admission decision happens in INPUT order, exactly as the
//              single-threaded driver would make them.
//
//   execute    num_threads workers pull prepared compute requests
//              (QUERY/SOLVE/SOLVEALL/MSO) from per-session FIFO queues and
//              run Server::ExecuteCompute concurrently. Queues are keyed by
//              pool fingerprint, not tenant name: requests on one session
//              stay strictly ordered (so per-request cache echoes are
//              deterministic even when tenants share an engine), while
//              different sessions overlap freely.
//
//   re-sequence  Replies carry their input sequence number into a
//              treedl::Sequencer, which writes them to the output stream in
//              input order no matter which worker finished first.
//
//   barriers   Requests that read or write cross-session state — LOAD,
//              ASSERT, SAVE, OPEN, STATS, CLOSE, QUIT, parse errors, and any
//              compute whose session is not resident (its acquire may evict
//              or build) — drain all in-flight work, then run inline on the
//              dispatch thread. This is what makes concurrent STATS
//              counters and pool=hit/warm/cold labels deterministic: they
//              are only ever rendered at quiescent points or in dispatch
//              order.
//
// Back-pressure: each session queue is bounded by queue_capacity. The
// default policy BLOCKS the dispatch thread until the queue drains (clients
// slow down; the transcript is unchanged). With reject_when_full the
// request is instead shed immediately with a deterministic E_ADMISSION
// reply at its sequence position — combined with HoldWorkers() (tests and
// benches gate the workers, dispatch everything, then release) even the
// shed SET is deterministic.
#ifndef TREEDL_SERVER_FRONTEND_HPP_
#define TREEDL_SERVER_FRONTEND_HPP_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/sequencer.hpp"
#include "server/server.hpp"

namespace treedl::server {

struct FrontendOptions {
  /// Worker threads executing compute requests (0 = hardware concurrency).
  /// 1 still pipelines dispatch against execution; the transcript is
  /// identical at every value.
  size_t num_threads = 1;
  /// Most queued-but-unstarted compute requests per session (>= 1).
  size_t queue_capacity = 64;
  /// Full queue policy: false = block dispatch until the queue drains
  /// (default; transcript unchanged), true = shed the request with an
  /// E_ADMISSION reply at its sequence position.
  bool reject_when_full = false;
  /// Start with the workers gated: dispatch proceeds, execution waits for
  /// ReleaseWorkers(). With reject_when_full this makes shed decisions
  /// deterministic — every queue fills before anything drains.
  bool hold_workers = false;
};

struct FrontendCounters {
  size_t dispatched_compute = 0;  // compute requests handed to workers
  size_t barriers = 0;            // pipeline drains (incl. non-resident compute)
  size_t queue_full_rejections = 0;  // requests shed with E_ADMISSION
  size_t max_queue_depth = 0;  // deepest any single session queue ever got
};

class Frontend {
 public:
  /// The server must outlive the front-end. The front-end assumes it is the
  /// only driver while Serve runs (Server::HandleLine is not thread-safe
  /// against it).
  Frontend(Server* server, FrontendOptions options);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Reads protocol lines from `in` until EOF or QUIT, writing re-sequenced
  /// replies to `out`. Returns the number of requests handled. Call from one
  /// thread at a time; the caller's thread becomes the dispatch stage.
  size_t Serve(std::istream& in, std::ostream& out);

  /// Opens the worker gate (no-op unless hold_workers).
  void ReleaseWorkers();

  FrontendCounters counters() const;

 private:
  struct WorkItem {
    uint64_t seq = 0;
    Server::ComputeWork work;
  };

  /// FIFO of prepared requests for one pooled session.
  struct SessionQueue {
    std::deque<WorkItem> items;
    /// A worker is executing this session's front item (popped items leave
    /// `items` only after execution, so capacity counts running work too).
    bool running = false;
  };

  void WorkerLoop();
  /// Blocks until every dispatched request has executed and released its
  /// lease. Dispatch thread only.
  void Drain(std::unique_lock<std::mutex>& lock);
  void Enqueue(uint64_t fingerprint, WorkItem item,
               std::unique_lock<std::mutex>& lock);

  Server* server_;
  FrontendOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: ready work or stop
  std::condition_variable done_cv_;  // dispatch: drain / queue space
  std::unordered_map<uint64_t, SessionQueue> queues_;
  /// Sessions with queued work and no running worker, in enqueue order.
  std::deque<uint64_t> ready_;
  size_t in_flight_ = 0;  // dispatched, not yet fully finished
  bool hold_ = false;
  bool stop_ = false;
  FrontendCounters counters_;

  Sequencer* sequencer_ = nullptr;  // non-null while Serve runs
  std::vector<std::thread> workers_;
};

}  // namespace treedl::server

#endif  // TREEDL_SERVER_FRONTEND_HPP_
