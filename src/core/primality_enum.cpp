#include "core/primality_enum.hpp"

#include <atomic>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/flat_table.hpp"
#include "common/logging.hpp"
#include "core/primality.hpp"
#include "core/primality_internal.hpp"
#include "core/tree_dp.hpp"
#include "engine/passes.hpp"
#include "engine/pipeline.hpp"

namespace treedl::core {

namespace {

using internal::PrimalityContext;
using internal::PrimJoinKey;
using internal::PrimState;
using internal::TableMemoryTracker;

// Deduplicating state set over the flat-table arena: Release()/MemoryBytes()
// back the same eviction protocol as the graph DPs, and insertion-order
// iteration is deterministic — though the enumeration's outputs (prime bits,
// set sizes) are order-independent anyway.
using StateSet = FlatTable<PrimState, std::monostate>;

void Insert(StateSet* set, PrimState s) {
  set->Emplace(std::move(s), std::monostate{},
               [](const std::monostate& existing, const std::monostate&) {
                 return existing;
               });
}

void ReleaseSet(StateSet* set, TableMemoryTracker* memory) {
  size_t bytes = set->MemoryBytes();
  if (bytes == 0) return;
  set->Release();
  memory->Evict(bytes);
}

/// Joins every key-compatible pair of `left` x `right` (bucketing the right
/// side) — the branch rule shared by both passes. Entry pointers stay valid
/// while the completed right table is alive.
void JoinInto(const PrimalityContext& context, const StateSet& left,
              const StateSet& right, const PrimalityContext::EmitState& emit) {
  std::unordered_map<PrimJoinKey, std::vector<const PrimState*>,
                     MemberHash<PrimJoinKey>>
      buckets;
  for (const auto& entry : right) {
    buckets[context.KeyOf(entry.first)].push_back(&entry.first);
  }
  for (const auto& [s, value] : left) {
    (void)value;
    auto it = buckets.find(context.KeyOf(s));
    if (it == buckets.end()) continue;
    for (const PrimState* r : it->second) context.Join(s, *r, emit);
  }
}

/// One node of the bottom-up solve() pass, as in primality.cpp but keeping
/// every node's table for the top-down pass.
void BottomUpStep(const PrimalityContext& context,
                  const NormalizedTreeDecomposition& ntd, TdNodeId id,
                  std::vector<StateSet>* table) {
  const NormNode& node = ntd.node(id);
  StateSet& states = (*table)[static_cast<size_t>(id)];
  auto emit = [&](PrimState s) { Insert(&states, std::move(s)); };
  switch (node.kind) {
    case NormNodeKind::kLeaf:
      context.LeafStates(node.bag, emit);
      break;
    case NormNodeKind::kIntroduce:
      for (const auto& [s, value] :
           (*table)[static_cast<size_t>(node.children[0])]) {
        (void)value;
        if (context.IsAttr(node.element)) {
          context.IntroduceAttr(node.bag, node.element, s, emit);
        } else {
          context.IntroduceFd(node.bag, node.element, s, emit);
        }
      }
      break;
    case NormNodeKind::kForget:
      for (const auto& [s, value] :
           (*table)[static_cast<size_t>(node.children[0])]) {
        (void)value;
        if (context.IsAttr(node.element)) {
          context.ForgetAttr(node.bag, node.element, s, emit);
        } else {
          context.ForgetFd(node.bag, node.element, s, emit);
        }
      }
      break;
    case NormNodeKind::kCopy:
      for (const auto& [s, value] :
           (*table)[static_cast<size_t>(node.children[0])]) {
        (void)value;
        emit(s);
      }
      break;
    case NormNodeKind::kBranch:
      JoinInto(context, (*table)[static_cast<size_t>(node.children[0])],
               (*table)[static_cast<size_t>(node.children[1])], emit);
      break;
  }
}

/// One node of the top-down solve↓() pass (§5.3): the state set of a node
/// characterizes the *envelope* T̄_s. Formulated per node — "compute my own
/// table from my parent's" — so a parents-first chunk of nodes is a valid
/// schedule for both the sequential walk and the inverted shard schedule.
/// Transitions invert the parent's kind; at a branch the sibling's bottom-up
/// table joins in.
void TopDownStep(const PrimalityContext& context,
                 const NormalizedTreeDecomposition& ntd, TdNodeId x,
                 const std::vector<StateSet>& up, std::vector<StateSet>* down) {
  StateSet& states = (*down)[static_cast<size_t>(x)];
  auto emit = [&](PrimState s) { Insert(&states, std::move(s)); };
  if (x == ntd.root()) {
    // Base: the envelope of the root is the root node alone — the leaf rule
    // applied to the root's bag.
    context.LeafStates(ntd.Bag(x), emit);
    return;
  }
  TdNodeId parent_id = ntd.node(x).parent;
  const NormNode& parent = ntd.node(parent_id);
  const StateSet& parent_down = (*down)[static_cast<size_t>(parent_id)];
  switch (parent.kind) {
    case NormNodeKind::kLeaf:
      TREEDL_CHECK(false) << "leaf with children";
      break;
    case NormNodeKind::kCopy:
      for (const auto& [s, value] : parent_down) {
        (void)value;
        emit(s);
      }
      break;
    case NormNodeKind::kIntroduce:
      // Parent introduced e going up; going down the envelope forgets it —
      // e's occurrences all lie inside the envelope of the child.
      for (const auto& [s, value] : parent_down) {
        (void)value;
        if (context.IsAttr(parent.element)) {
          context.ForgetAttr(ntd.Bag(x), parent.element, s, emit);
        } else {
          context.ForgetFd(ntd.Bag(x), parent.element, s, emit);
        }
      }
      break;
    case NormNodeKind::kForget:
      // Parent forgot e going up; going down the envelope introduces it
      // fresh (e occurs only below the child, so only at the child from the
      // envelope's perspective).
      for (const auto& [s, value] : parent_down) {
        (void)value;
        if (context.IsAttr(parent.element)) {
          context.IntroduceAttr(ntd.Bag(x), parent.element, s, emit);
        } else {
          context.IntroduceFd(ntd.Bag(x), parent.element, s, emit);
        }
      }
      break;
    case NormNodeKind::kBranch: {
      // T̄_child = T̄_parent ∪ T_sibling: join the parent's envelope states
      // with the sibling's subtree states.
      TdNodeId sibling = parent.children[parent.children[0] == x ? 1 : 0];
      JoinInto(context, parent_down, up[static_cast<size_t>(sibling)], emit);
      break;
    }
  }
}

void CountStates(const StateSet& states, DpStats* stats) {
  if (stats == nullptr) return;
  stats->total_states += states.size();
  stats->max_states_per_node =
      std::max(stats->max_states_per_node, states.size());
}

/// Bottom-up pass over one parents-last chunk (the full post order, or one
/// shard's node list). Eviction: a non-branch node is its child's only
/// reader — branch children must survive for the top-down sibling joins.
/// A tripped budget skips the per-node work but keeps walking the chunk, so
/// the shard scheduling epilogue (and the caller's abort check) still run.
void BottomUpChunk(const PrimalityContext& context,
                   const NormalizedTreeDecomposition& ntd,
                   const std::vector<TdNodeId>& nodes,
                   std::vector<StateSet>* up, TableMemoryTracker* memory,
                   bool evict, WorkBudget* budget, DpStats* stats) {
  for (TdNodeId id : nodes) {
    if (budget != nullptr && !budget->ConsumeUnit()) continue;
    BottomUpStep(context, ntd, id, up);
    CountStates((*up)[static_cast<size_t>(id)], stats);
    memory->Add((*up)[static_cast<size_t>(id)].MemoryBytes());
    if (budget != nullptr) {
      budget->CheckTableBytes(memory->current.load(std::memory_order_relaxed));
    }
    if (evict) {
      const NormNode& node = ntd.node(id);
      if (node.kind != NormNodeKind::kBranch) {
        for (TdNodeId child : node.children) {
          ReleaseSet(&(*up)[static_cast<size_t>(child)], memory);
        }
      }
    }
  }
}

/// Top-down pass over one parents-first chunk. Eviction: after node x is
/// processed, (a) up[sibling(x)] has seen its last read (x's branch join) —
/// siblings release each other's tables, possibly from concurrent shards,
/// each table by its unique reader; (b) once every child of x's parent is
/// processed (cross-shard atomic countdown), down[parent] is dead — leaves
/// have no children, so the leaf tables the prime read-off needs survive.
void TopDownChunk(const PrimalityContext& context,
                  const NormalizedTreeDecomposition& ntd,
                  const std::vector<TdNodeId>& nodes,
                  std::vector<StateSet>* up, std::vector<StateSet>* down,
                  TableMemoryTracker* memory, bool evict, WorkBudget* budget,
                  std::vector<std::atomic<size_t>>* down_pending,
                  DpStats* stats) {
  for (TdNodeId x : nodes) {
    if (budget != nullptr && !budget->ConsumeUnit()) continue;
    TopDownStep(context, ntd, x, *up, down);
    CountStates((*down)[static_cast<size_t>(x)], stats);
    memory->Add((*down)[static_cast<size_t>(x)].MemoryBytes());
    if (budget != nullptr) {
      budget->CheckTableBytes(memory->current.load(std::memory_order_relaxed));
    }
    if (!evict) continue;
    if (x == ntd.root()) {
      // Nothing reads the root's bottom-up table after its pass completed.
      ReleaseSet(&(*up)[static_cast<size_t>(x)], memory);
      continue;
    }
    TdNodeId parent_id = ntd.node(x).parent;
    const NormNode& parent = ntd.node(parent_id);
    if (parent.kind == NormNodeKind::kBranch) {
      TdNodeId sibling = parent.children[parent.children[0] == x ? 1 : 0];
      ReleaseSet(&(*up)[static_cast<size_t>(sibling)], memory);
    }
    if ((*down_pending)[static_cast<size_t>(parent_id)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      ReleaseSet(&(*down)[static_cast<size_t>(parent_id)], memory);
    }
  }
}

}  // namespace

namespace internal {

std::vector<bool> EnumeratePrimesPrepared(const PrimalityContext& context,
                                          const SchemaEncoding& encoding,
                                          int num_attributes,
                                          const NormalizedTreeDecomposition& ntd,
                                          RunStats* stats, const DpExec& exec) {
  DpStats dp;
  size_t num_nodes = ntd.NumNodes();
  std::vector<StateSet> up(num_nodes);
  std::vector<StateSet> down(num_nodes);
  TableMemoryTracker memory;
  const bool evict = exec.table_memory_budget > 0;
  const bool parallel = exec.Parallel();

  // Pass 1: bottom-up solve() tables, child shards before their parent.
  if (parallel) {
    RunShardedWalk(
        exec,
        [&](const std::vector<TdNodeId>& nodes, DpStats* local) {
          BottomUpChunk(context, ntd, nodes, &up, &memory, evict, exec.budget,
                        local);
        },
        &dp, WalkDirection::kBottomUp);
  } else {
    std::vector<TdNodeId> post = ntd.PostOrder();
    BottomUpChunk(context, ntd, post, &up, &memory, evict, exec.budget, &dp);
  }

  // Pass 2: top-down solve↓() tables on the inverted schedule — the root
  // shard first, each shard's nodes in reverse post order.
  std::vector<std::atomic<size_t>> down_pending(num_nodes);
  if (evict) {
    for (size_t id = 0; id < num_nodes; ++id) {
      down_pending[id].store(ntd.node(static_cast<TdNodeId>(id)).children.size(),
                             std::memory_order_relaxed);
    }
  }
  if (parallel) {
    RunShardedWalk(
        exec,
        [&](const std::vector<TdNodeId>& nodes, DpStats* local) {
          TopDownChunk(context, ntd, nodes, &up, &down, &memory, evict,
                       exec.budget, &down_pending, local);
        },
        &dp, WalkDirection::kTopDown);
  } else {
    std::vector<TdNodeId> post = ntd.PostOrder();
    std::vector<TdNodeId> pre(post.rbegin(), post.rend());
    TopDownChunk(context, ntd, pre, &up, &down, &memory, evict, exec.budget,
                 &down_pending, &dp);
  }

  memory.FoldInto(&dp);
  if (stats != nullptr) {
    stats->dp_states += dp.total_states;
    stats->dp_max_states_per_node =
        std::max(stats->dp_max_states_per_node, dp.max_states_per_node);
    stats->primality_shards += dp.shards;
    stats->dp_shard_millis.insert(stats->dp_shard_millis.end(),
                                  dp.shard_millis.begin(),
                                  dp.shard_millis.end());
    stats->dp_traversals += 2;
    stats->dp_passes += 2;
    stats->dp_peak_table_bytes =
        std::max(stats->dp_peak_table_bytes, dp.peak_table_bytes);
    stats->dp_tables_evicted += dp.tables_evicted;
  }

  // prime(a) is read off at the leaves (every attribute occurs in some leaf
  // bag by the ensure_leaf_coverage normalization option). Note that solve↓
  // at a leaf characterizes the envelope of the leaf — the *entire*
  // structure — exactly like solve at the root of a re-rooted decomposition.
  // Leaf-only on purpose: under a table_memory_budget the eviction protocol
  // above released every *interior* down table (leaves have no children, so
  // the countdown never fires for them) — the leaves are exactly the tables
  // guaranteed to survive the walk.
  std::vector<bool> primes(static_cast<size_t>(num_attributes), false);
  for (TdNodeId id : ntd.PreOrder()) {
    if (ntd.node(id).kind != NormNodeKind::kLeaf) continue;
    const auto& bag = ntd.Bag(id);
    for (ElementId e : bag) {
      if (!context.IsAttr(e)) continue;
      AttributeId a = encoding.AttrOf(e);
      if (primes[static_cast<size_t>(a)]) continue;
      for (const auto& [s, value] : down[static_cast<size_t>(id)]) {
        (void)value;
        if (context.Accepts(bag, s, e)) {
          primes[static_cast<size_t>(a)] = true;
          break;
        }
      }
    }
  }
  return primes;
}

}  // namespace internal

StatusOr<std::vector<bool>> EnumeratePrimes(const Schema& schema,
                                            const SchemaEncoding& encoding,
                                            const TreeDecomposition& td,
                                            RunStats* stats) {
  if (stats != nullptr) *stats = RunStats{};
  PrimalityContext context(schema, encoding);
  engine::PipelineState state;
  state.structure = &encoding.structure;
  state.td = td;
  state.normalize_options =
      internal::PrimalityNormalizeOptions(encoding, /*for_enumeration=*/true);
  engine::PassPipeline pipeline;
  pipeline.Emplace<engine::ValidateStructurePass>()
      .Emplace<engine::RhsClosurePass>(&encoding, &context)
      .Emplace<engine::NormalizePass>();
  TREEDL_RETURN_IF_ERROR(pipeline.Run(state, stats));
  if (stats != nullptr) ++stats->normalize_builds;

  return internal::EnumeratePrimesPrepared(
      context, encoding, schema.NumAttributes(), *state.normalized, stats);
}

StatusOr<std::vector<bool>> EnumeratePrimes(const Schema& schema,
                                            const SchemaEncoding& encoding,
                                            const TreeDecomposition& td,
                                            DpStats* stats) {
  RunStats run;
  auto result = EnumeratePrimes(schema, encoding, td, &run);
  if (stats != nullptr) {
    stats->total_states = run.dp_states;
    stats->max_states_per_node = run.dp_max_states_per_node;
  }
  return result;
}

StatusOr<std::vector<bool>> EnumeratePrimesQuadratic(
    const Schema& schema, const SchemaEncoding& encoding,
    const TreeDecomposition& td) {
  std::vector<bool> primes(static_cast<size_t>(schema.NumAttributes()), false);
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    TREEDL_ASSIGN_OR_RETURN(bool prime,
                            IsPrimeViaTd(schema, encoding, td, a));
    primes[static_cast<size_t>(a)] = prime;
  }
  return primes;
}

}  // namespace treedl::core
