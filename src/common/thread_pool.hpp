// A small work-stealing thread pool for the sharded tree-DP executor.
//
// Each worker owns a deque: it pops the newest task from its own back (good
// locality for the dependency-triggered shard tasks, which tend to submit
// their parent right after finishing a subtree) and steals the oldest task
// from the front of another worker's deque when its own is empty. External
// submitters distribute round-robin. Tasks must not block on other pool
// tasks — the shard executor only submits a task once every dependency has
// completed, so the pool never deadlocks and callers can simply Wait on a
// WaitGroup counting their own tasks.
//
// Header-only so core/ (tree_dp.hpp) can use it without a new library.
#ifndef TREEDL_COMMON_THREAD_POOL_HPP_
#define TREEDL_COMMON_THREAD_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace treedl {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// std::thread::hardware_concurrency with a floor of 1 (the standard allows
  /// it to report 0 when the count is unknowable).
  static size_t DefaultNumThreads() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    queues_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      queues_.push_back(std::make_unique<WorkQueue>());
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// Enqueues a task. Worker threads push onto their own deque; external
  /// threads distribute round-robin.
  void Submit(Task task) {
    size_t target = WorkerIndex();
    if (target == kNotAWorker) {
      target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
               queues_.size();
    }
    // Count the task before making it visible: a consumer that pops it must
    // find pending_ > 0, or the counter would wrap below zero. A waiter that
    // sees the count before the push spins one TakeTask round and re-waits.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
    }
    {
      std::lock_guard<std::mutex> lock(queues_[target]->mu);
      queues_[target]->tasks.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Runs one queued task on the calling thread, if any is immediately
  /// available. Returns false when every deque is empty — lets a thread that
  /// is waiting for its tasks help drain the pool instead of idling.
  bool RunOneTask() {
    Task task;
    if (!TakeTask(WorkerIndex(), &task)) return false;
    task();
    return true;
  }

 private:
  struct WorkQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

  // Which worker of *this* pool the calling thread is, or kNotAWorker.
  size_t WorkerIndex() const {
    return tls_pool == this ? tls_index : kNotAWorker;
  }

  // Pops from the back of `self`'s deque, else steals from the front of the
  // others. Decrements the pending count on success.
  bool TakeTask(size_t self, Task* out) {
    size_t n = queues_.size();
    if (self != kNotAWorker) {
      WorkQueue& own = *queues_[self];
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.tasks.empty()) {
        *out = std::move(own.tasks.back());
        own.tasks.pop_back();
        TookOne();
        return true;
      }
    }
    size_t start = self == kNotAWorker ? 0 : self + 1;
    for (size_t k = 0; k < n; ++k) {
      WorkQueue& victim = *queues_[(start + k) % n];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.tasks.empty()) {
        *out = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        TookOne();
        return true;
      }
    }
    return false;
  }

  void TookOne() {
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
  }

  void WorkerLoop(size_t self) {
    tls_pool = this;
    tls_index = self;
    while (true) {
      Task task;
      if (TakeTask(self, &task)) {
        task();
        continue;
      }
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
      if (stop_ && pending_ == 0) return;
    }
  }

  // Worker identity of the calling thread (which pool, which deque).
  static inline thread_local const ThreadPool* tls_pool = nullptr;
  static inline thread_local size_t tls_index = kNotAWorker;

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_queue_{0};

  std::mutex mu_;  // guards pending_ / stop_ and backs cv_
  std::condition_variable cv_;
  size_t pending_ = 0;
  bool stop_ = false;
};

/// Counts outstanding tasks of one logical operation; Wait blocks until every
/// Add has been matched by a Done. The shard executor Adds once per shard and
/// Waits on the submitting thread.
class WaitGroup {
 public:
  void Add(size_t n = 1) { count_.fetch_add(n, std::memory_order_acq_rel); }

  void Done() {
    if (count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_.load(std::memory_order_acquire) == 0; });
  }

 private:
  std::atomic<size_t> count_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace treedl

#endif  // TREEDL_COMMON_THREAD_POOL_HPP_
