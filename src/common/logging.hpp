// Minimal leveled logging + check macros.
//
// TREEDL_CHECK is always on (used to enforce internal invariants whose
// violation indicates a programming error, per the RocksDB "fail fast on
// corruption" philosophy). TREEDL_DCHECK compiles away in NDEBUG builds.
#ifndef TREEDL_COMMON_LOGGING_HPP_
#define TREEDL_COMMON_LOGGING_HPP_

#include <sstream>
#include <string>

namespace treedl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (with level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the message at error level and aborts. Used by check macros.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);

/// Accumulates detail text for a failing check, then aborts in its destructor.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckFailStream() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal

#define TREEDL_LOG(level)                                             \
  ::treedl::internal::LogMessage(::treedl::LogLevel::k##level, __FILE__, \
                                 __LINE__)

#define TREEDL_CHECK(cond)                                       \
  if (cond) {                                                    \
  } else                                                         \
    ::treedl::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define TREEDL_DCHECK(cond) \
  if (true) {               \
  } else                    \
    ::treedl::internal::CheckFailStream(__FILE__, __LINE__, #cond)
#else
#define TREEDL_DCHECK(cond) TREEDL_CHECK(cond)
#endif

}  // namespace treedl

#endif  // TREEDL_COMMON_LOGGING_HPP_
