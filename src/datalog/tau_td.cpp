#include "datalog/tau_td.hpp"

#include "common/logging.hpp"
#include "structure/structure_io.hpp"

namespace treedl::datalog {

StatusOr<TauTdEncoding> BuildTauTd(const Structure& a,
                                   const TupleNormalizedTd& td) {
  Signature sig = a.signature();
  for (const char* name : {"root", "leaf", "child1", "child2", "bag"}) {
    if (sig.HasPredicate(name)) {
      return Status::InvalidArgument(
          std::string("base signature already declares τ_td predicate ") +
          name);
    }
  }
  TREEDL_ASSIGN_OR_RETURN(PredicateId root_p, sig.AddPredicate("root", 1));
  TREEDL_ASSIGN_OR_RETURN(PredicateId leaf_p, sig.AddPredicate("leaf", 1));
  TREEDL_ASSIGN_OR_RETURN(PredicateId child1_p, sig.AddPredicate("child1", 2));
  TREEDL_ASSIGN_OR_RETURN(PredicateId child2_p, sig.AddPredicate("child2", 2));
  TREEDL_ASSIGN_OR_RETURN(PredicateId bag_p,
                          sig.AddPredicate("bag", td.width() + 2));

  Structure out(sig);
  // Copy the domain (ids preserved) and the τ-facts.
  for (ElementId e = 0; e < a.NumElements(); ++e) {
    ElementId copied = out.AddElement(a.ElementName(e));
    TREEDL_CHECK(copied == e);
  }
  for (const Fact& fact : a.AllFacts()) {
    Status st = out.AddFact(fact.predicate, fact.args);
    TREEDL_CHECK(st.ok()) << st.ToString();
  }

  // One fresh element per tree node.
  std::vector<ElementId> node_element(td.NumNodes());
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    std::string name = "s" + std::to_string(i + 1);
    if (out.HasElementNamed(name)) name = "node_" + std::to_string(i + 1);
    node_element[i] = out.AddElement(name);
  }

  auto add = [&out](PredicateId p, Tuple t) {
    Status st = out.AddFact(p, std::move(t));
    TREEDL_CHECK(st.ok()) << st.ToString();
  };

  add(root_p, {node_element[static_cast<size_t>(td.root())]});
  for (TdNodeId id : td.PreOrder()) {
    const TupleNode& n = td.node(id);
    ElementId self = node_element[static_cast<size_t>(id)];
    if (n.children.empty()) add(leaf_p, {self});
    if (n.children.size() >= 1) {
      add(child1_p, {node_element[static_cast<size_t>(n.children[0])], self});
    }
    if (n.children.size() == 2) {
      add(child2_p, {node_element[static_cast<size_t>(n.children[1])], self});
    }
    Tuple bag{self};
    for (ElementId e : n.bag) bag.push_back(e);
    add(bag_p, std::move(bag));
  }
  return TauTdEncoding{std::move(out), std::move(node_element)};
}

void SerializeTauTd(const TauTdEncoding& encoding, BinaryWriter* writer) {
  SerializeStructure(encoding.structure, writer);
  writer->Vec32(encoding.node_element);
}

StatusOr<TauTdEncoding> DeserializeTauTd(BinaryReader* reader) {
  TREEDL_ASSIGN_OR_RETURN(Structure structure,
                          DeserializeStructure(reader));
  std::vector<ElementId> node_element;
  TREEDL_RETURN_IF_ERROR(reader->Vec32(&node_element));
  for (ElementId e : node_element) {
    if (e >= structure.NumElements()) {
      return Status::ParseError("tau_td: node element id " +
                                std::to_string(e) + " outside the domain");
    }
  }
  return TauTdEncoding{std::move(structure), std::move(node_element)};
}

}  // namespace treedl::datalog
