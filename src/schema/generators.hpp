// Schema instance generators.
//
// GenerateBalancedInstance reproduces the test-data generation of §6: "Due to
// the lack of available test data, we generated a balanced normalized tree
// decomposition … expanding the tree in a depth-first style … all different
// kinds of nodes occur evenly … treewidth in all test cases was 3."
//
// Our family: FD groups arranged in a balanced binary tree (heap numbering).
// Group i carries attributes x_i, y_i, z_i. Group 1 has f_1: x_1 y_1 -> z_1;
// group i > 1 with parent p has f_i: z_p x_i -> z_i. Hence:
//   #Att = 3 · #FD (the exact ratio of Table 1's rows),
//   incidence treewidth 3 (group bags {f_i, z_p, x_i, z_i} have 4 elements),
//   every x_i / y_i is prime (on no rhs, hence in every key) and every z_i is
//   non-prime — a checkable ground truth for tests,
//   derivation chains follow the tree depth, exercising the ordered-Co logic
//   of the §5.2 program.
#ifndef TREEDL_SCHEMA_GENERATORS_HPP_
#define TREEDL_SCHEMA_GENERATORS_HPP_

#include "common/rng.hpp"
#include "schema/encode.hpp"
#include "schema/schema.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

struct BalancedInstance {
  Schema schema;
  SchemaEncoding encoding;
  /// Width-3 tree decomposition of encoding.structure, rooted at a bag
  /// containing the query attribute.
  TreeDecomposition td;
  /// The attribute whose primality Table 1 times: x_1 (prime).
  AttributeId query_attribute = 0;
  /// A non-prime attribute in the root bag region (z_1), for negative runs.
  AttributeId nonprime_attribute = 0;
};

/// Builds the instance with `num_fds` FDs (and 3·num_fds attributes).
/// Requires num_fds >= 1.
BalancedInstance GenerateBalancedInstance(int num_fds);

/// A random schema whose encoded structure has small treewidth: attributes
/// 0..n-1 on a path; each FD draws its attributes from a random window of
/// `window` consecutive attributes (lhs of 1..window-1 attributes plus an rhs
/// in-window). Used by property tests against the brute-force oracle.
Schema RandomWindowSchema(int num_attributes, int num_fds, int window, Rng* rng);

}  // namespace treedl

#endif  // TREEDL_SCHEMA_GENERATORS_HPP_
