// Encoding of relational schemas as τ-structures with τ = {fd, att, lh, rh}
// (§2.2, Ex 2.2), and the inverse decoding.
//
// Element-id layout is deterministic: attribute i of the schema becomes
// element i of the structure; FD j becomes element NumAttributes() + j. The
// treewidth of the encoded structure equals the treewidth of the incidence
// graph of the schema's hypergraph (Remark in §2.2).
#ifndef TREEDL_SCHEMA_ENCODE_HPP_
#define TREEDL_SCHEMA_ENCODE_HPP_

#include "common/status.hpp"
#include "schema/schema.hpp"
#include "structure/structure.hpp"

namespace treedl {

struct SchemaEncoding {
  Structure structure;
  int num_attributes = 0;
  int num_fds = 0;

  ElementId AttrElement(AttributeId a) const {
    return static_cast<ElementId>(a);
  }
  ElementId FdElement(FdId f) const {
    return static_cast<ElementId>(num_attributes + f);
  }
  bool IsAttrElement(ElementId e) const {
    return e < static_cast<ElementId>(num_attributes);
  }
  bool IsFdElement(ElementId e) const {
    return !IsAttrElement(e) &&
           e < static_cast<ElementId>(num_attributes + num_fds);
  }
  AttributeId AttrOf(ElementId e) const { return static_cast<AttributeId>(e); }
  FdId FdOf(ElementId e) const {
    return static_cast<FdId>(e) - num_attributes;
  }
};

/// Builds the τ-structure: att(b) for attributes, fd(f) for FDs, lh(b, f) for
/// b ∈ lhs(f), rh(b, f) for b = rhs(f). FD element names are "f1", "f2", ...
/// unless they collide with attribute names (then "fd_<j>").
SchemaEncoding EncodeSchema(const Schema& schema);

/// Inverse of EncodeSchema (for round-trip tests): reads a schema out of a
/// {fd, att, lh, rh}-structure.
StatusOr<Schema> DecodeSchema(const Structure& structure);

}  // namespace treedl

#endif  // TREEDL_SCHEMA_ENCODE_HPP_
