// Naive MSO model checking.
//
// Evaluates formulas by direct quantifier expansion: FO quantifiers loop over
// the domain, SO quantifiers over all 2^n subsets (domains are capped at 64
// elements so sets fit a SmallBitset). Data complexity is exponential — this
// evaluator plays the role MONA played in the paper's §6 experiments: correct
// on small inputs, and failing with a resource error once the exponential
// blow-up hits. The `work_budget` knob makes that failure deterministic and
// reportable ("—" rows of Table 1).
#ifndef TREEDL_MSO_EVALUATOR_HPP_
#define TREEDL_MSO_EVALUATOR_HPP_

#include <map>
#include <string>

#include "common/small_bitset.hpp"
#include "common/status.hpp"
#include "mso/ast.hpp"
#include "structure/structure.hpp"

namespace treedl::mso {

struct Assignment {
  std::map<std::string, ElementId> fo;
  std::map<std::string, SmallBitset> so;
};

struct EvalOptions {
  /// Abstract work units (one per formula-node visit). 0 = unlimited.
  uint64_t work_budget = 0;
};

struct EvalUsage {
  uint64_t work = 0;
};

/// Evaluates `f` on `structure` under `assignment` (which must cover all free
/// variables). Fails with InvalidArgument on unbound variables/bad atoms, with
/// OutOfRange if the domain exceeds 64 elements, and with ResourceExhausted
/// when the work budget runs out.
StatusOr<bool> Evaluate(const Structure& structure, const Formula& f,
                        const Assignment& assignment,
                        const EvalOptions& options = {},
                        EvalUsage* usage = nullptr);

/// Convenience for sentences (no free variables).
StatusOr<bool> EvaluateSentence(const Structure& structure, const Formula& f,
                                const EvalOptions& options = {},
                                EvalUsage* usage = nullptr);

/// Convenience for unary queries φ(x): binds `free_var` to `element`.
StatusOr<bool> EvaluateUnary(const Structure& structure, const Formula& f,
                             const std::string& free_var, ElementId element,
                             const EvalOptions& options = {},
                             EvalUsage* usage = nullptr);

}  // namespace treedl::mso

#endif  // TREEDL_MSO_EVALUATOR_HPP_
