// ArenaVec: a growable array of trivially-copyable elements whose storage
// lives in an external bump Arena (common/arena.hpp).
//
// The datalog FactStore keeps every per-relation array — argument columns,
// hash-index slots, bucket records, per-index row chains — in the relation's
// own arena through this type: one malloc per geometric growth step of the
// arena instead of one per std::vector resize, and the whole relation is
// freed with a single Arena::Reset. Growth allocates a fresh arena block and
// copies (the FlatTable tradeoff: superseded blocks stay until Reset, a
// bounded ~2x overhead that MemoryBytes/TotalBytes reports honestly).
//
// Deliberately minimal: no destructors run (T must be trivially copyable and
// trivially destructible), no shrink, no erase. Not thread-safe — same
// contract as the Arena itself; the parallel fixpoint only reads frozen
// structures built through this type.
#ifndef TREEDL_COMMON_ARENA_VEC_HPP_
#define TREEDL_COMMON_ARENA_VEC_HPP_

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "common/arena.hpp"
#include "common/logging.hpp"

namespace treedl {

template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "ArenaVec elements live in an arena and are never destroyed");

 public:
  ArenaVec() = default;
  // Copy/move keep the raw pointer: the backing storage is owned by the
  // arena, not by this header, so default member-wise copies are correct as
  // long as both copies stop growing (the FactStore only moves whole
  // relations together with their arena).
  ArenaVec(const ArenaVec&) = default;
  ArenaVec& operator=(const ArenaVec&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* data() const { return data_; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void push_back(const T& value, Arena* arena) {
    if (size_ == capacity_) Grow(arena, size_ + 1);
    data_[size_++] = value;
  }

  /// Appends `count` copies of `value` (used to zero-fill index slot arrays).
  void append_fill(size_t count, const T& value, Arena* arena) {
    if (size_ + count > capacity_) Grow(arena, size_ + count);
    for (size_t i = 0; i < count; ++i) data_[size_ + i] = value;
    size_ += count;
  }

  /// Drops every element but keeps the current storage (for index rebuilds
  /// within the same arena generation).
  void clear() { size_ = 0; }

 private:
  void Grow(Arena* arena, size_t needed) {
    size_t next = capacity_ == 0 ? 8 : capacity_ * 2;
    while (next < needed) next *= 2;
    T* grown = arena->template AllocateArray<T>(next);
    if (size_ > 0) std::memcpy(grown, data_, size_ * sizeof(T));
    data_ = grown;
    capacity_ = next;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace treedl

#endif  // TREEDL_COMMON_ARENA_VEC_HPP_
