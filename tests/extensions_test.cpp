#include <gtest/gtest.h>

#include "core/extensions.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algorithms.hpp"

namespace treedl::core {
namespace {

TEST(ExtensionsTest, KnownGraphs) {
  Graph c5 = CycleGraph(5);
  EXPECT_EQ(MinVertexCoverTd(c5).value(), 3u);
  EXPECT_EQ(MaxIndependentSetTd(c5).value(), 2u);
  EXPECT_EQ(MinDominatingSetTd(c5).value(), 2u);

  Graph star(6);
  for (VertexId v = 1; v < 6; ++v) star.AddEdge(0, v);
  EXPECT_EQ(MinVertexCoverTd(star).value(), 1u);
  EXPECT_EQ(MaxIndependentSetTd(star).value(), 5u);
  EXPECT_EQ(MinDominatingSetTd(star).value(), 1u);

  Graph k4 = CompleteGraph(4);
  EXPECT_EQ(MinVertexCoverTd(k4).value(), 3u);
  EXPECT_EQ(MaxIndependentSetTd(k4).value(), 1u);
  EXPECT_EQ(MinDominatingSetTd(k4).value(), 1u);

  Graph edgeless(4);
  EXPECT_EQ(MinVertexCoverTd(edgeless).value(), 0u);
  EXPECT_EQ(MaxIndependentSetTd(edgeless).value(), 4u);
  EXPECT_EQ(MinDominatingSetTd(edgeless).value(), 4u);

  EXPECT_EQ(MinVertexCoverTd(PetersenGraph()).value(), 6u);
  EXPECT_EQ(MaxIndependentSetTd(PetersenGraph()).value(), 4u);
  EXPECT_EQ(MinDominatingSetTd(PetersenGraph()).value(), 3u);
}

class ExtensionsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionsPropertyTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 1);
  Graph g = RandomPartialKTree(11, 3, 0.7, &rng);
  EXPECT_EQ(MinVertexCoverTd(g).value(), MinVertexCoverBruteForce(g));
  EXPECT_EQ(MaxIndependentSetTd(g).value(), MaxIndependentSetBruteForce(g));
  EXPECT_EQ(MinDominatingSetTd(g).value(), MinDominatingSetBruteForce(g));
}

TEST_P(ExtensionsPropertyTest, GallaiIdentity) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 2);
  Graph g = RandomPartialKTree(16, 3, 0.6, &rng);
  // min VC + max IS = n, checked DP-vs-DP at sizes beyond the brute force.
  EXPECT_EQ(MinVertexCoverTd(g).value() + MaxIndependentSetTd(g).value(),
            g.NumVertices());
  // DS never exceeds VC on graphs without isolated vertices; with possible
  // isolated vertices only the trivial bound DS <= n holds, so check that.
  EXPECT_LE(MinDominatingSetTd(g).value(), g.NumVertices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionsPropertyTest, ::testing::Range(0, 15));

TEST(ExtensionsTest, RejectsInvalidDecomposition) {
  Graph g = CycleGraph(4);
  TreeDecomposition bad;
  bad.AddNode({0});
  EXPECT_FALSE(MinVertexCoverTd(g, bad).ok());
  EXPECT_FALSE(MaxIndependentSetTd(g, bad).ok());
  EXPECT_FALSE(MinDominatingSetTd(g, bad).ok());
}

}  // namespace
}  // namespace treedl::core
