// Generic dynamic programming over modified-normalized tree decompositions.
//
// This captures the execution model of the paper's §5 programs: a succinct
// (non-monadic) datalog program whose solve(...) facts are computed by a
// bottom-up traversal, materializing only *reachable* states (the paper's
// optimization (2), "lazy grounding"). Problems plug in transition hooks:
//
//   struct Problem {
//     using State = ...;   // provides hash() and operator==
//     using Value = ...;   // e.g. std::monostate (decision), uint64_t (count)
//     void Leaf(bag, emit);
//     void Introduce(bag, element, state, value, emit);
//     void Forget(bag, element, state, value, emit);
//     JoinKey KeyOf(state);                     // JoinKey provides hash()/==
//     void Join(bag, s1, v1, s2, v2, emit);     // called per key-equal pair
//     Value Merge(v1, v2);                      // same state reached twice
//   };
//
// `emit(state, value)` may be called any number of times per transition.
#ifndef TREEDL_CORE_TREE_DP_HPP_
#define TREEDL_CORE_TREE_DP_HPP_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/logging.hpp"
#include "common/status.hpp"
#include "td/normalize.hpp"

namespace treedl::core {

template <typename T>
struct MemberHash {
  size_t operator()(const T& t) const { return t.hash(); }
};

template <typename State, typename Value>
using StateMap = std::unordered_map<State, Value, MemberHash<State>>;

template <typename State, typename Value>
struct DpTable {
  /// Indexed by normalized-TD node id.
  std::vector<StateMap<State, Value>> nodes;

  const StateMap<State, Value>& at(TdNodeId id) const {
    return nodes[static_cast<size_t>(id)];
  }
};

struct DpStats {
  size_t total_states = 0;
  size_t max_states_per_node = 0;
};

/// Runs the bottom-up pass of `problem` over `ntd` and returns the full
/// table. The table at the root characterizes the whole structure.
template <typename Problem>
DpTable<typename Problem::State, typename Problem::Value> RunTreeDp(
    const NormalizedTreeDecomposition& ntd, Problem* problem,
    DpStats* stats = nullptr) {
  using State = typename Problem::State;
  using Value = typename Problem::Value;
  DpTable<State, Value> table;
  table.nodes.resize(ntd.NumNodes());

  for (TdNodeId id : ntd.PostOrder()) {
    const NormNode& node = ntd.node(id);
    auto& states = table.nodes[static_cast<size_t>(id)];
    auto emit = [&](State state, Value value) {
      auto [it, inserted] = states.emplace(std::move(state), value);
      if (!inserted) it->second = problem->Merge(it->second, value);
    };
    switch (node.kind) {
      case NormNodeKind::kLeaf:
        problem->Leaf(node.bag, emit);
        break;
      case NormNodeKind::kIntroduce: {
        const auto& child = table.nodes[static_cast<size_t>(node.children[0])];
        for (const auto& [state, value] : child) {
          problem->Introduce(node.bag, node.element, state, value, emit);
        }
        break;
      }
      case NormNodeKind::kForget: {
        const auto& child = table.nodes[static_cast<size_t>(node.children[0])];
        for (const auto& [state, value] : child) {
          problem->Forget(node.bag, node.element, state, value, emit);
        }
        break;
      }
      case NormNodeKind::kCopy: {
        const auto& child = table.nodes[static_cast<size_t>(node.children[0])];
        for (const auto& [state, value] : child) emit(state, value);
        break;
      }
      case NormNodeKind::kBranch: {
        const auto& left = table.nodes[static_cast<size_t>(node.children[0])];
        const auto& right = table.nodes[static_cast<size_t>(node.children[1])];
        // Bucket the right child's states by join key, then pair.
        using JoinKey =
            std::decay_t<decltype(problem->KeyOf(left.begin()->first))>;
        std::unordered_map<JoinKey, std::vector<const State*>,
                           MemberHash<JoinKey>>
            buckets;
        for (const auto& [state, value] : right) {
          buckets[problem->KeyOf(state)].push_back(&state);
        }
        for (const auto& [state, value] : left) {
          auto it = buckets.find(problem->KeyOf(state));
          if (it == buckets.end()) continue;
          for (const State* rstate : it->second) {
            problem->Join(node.bag, state, value, *rstate,
                          right.at(*rstate), emit);
          }
        }
        break;
      }
    }
    if (stats != nullptr) {
      stats->total_states += states.size();
      stats->max_states_per_node =
          std::max(stats->max_states_per_node, states.size());
    }
  }
  return table;
}

}  // namespace treedl::core

#endif  // TREEDL_CORE_TREE_DP_HPP_
