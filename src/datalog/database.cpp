#include "datalog/database.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "common/logging.hpp"

namespace treedl::datalog {

namespace {

constexpr uint32_t kNoBucket = std::numeric_limits<uint32_t>::max();

/// Seed of one probe key's hash. KeyHash over a compact key array and
/// KeyHashAt over a stored row must produce identical fold sequences, so
/// both start here and combine values in ascending mask-position order.
size_t MaskSeed(uint32_t mask) {
  size_t seed = 0xcbf29ce484222325ULL;
  HashCombine(&seed, mask);
  return seed;
}

}  // namespace

FactStore::FactStore(const Signature& sig) {
  relations_.resize(static_cast<size_t>(sig.size()));
  for (PredicateId p = 0; p < sig.size(); ++p) {
    Relation& rel = relations_[static_cast<size_t>(p)];
    rel.arity = sig.arity(p);
    TREEDL_CHECK(rel.arity < 32) << "arity too large for pattern masks";
    rel.full_mask = rel.arity == 0 ? 0 : (1u << rel.arity) - 1;
    rel.columns.resize(static_cast<size_t>(rel.arity));
    rel.dedup.mask = rel.full_mask;
  }
}

size_t FactStore::KeyHash(uint32_t mask, const ElementId* key) {
  size_t seed = MaskSeed(mask);
  for (uint32_t m = mask, k = 0; m != 0; m &= m - 1, ++k) {
    HashCombine(&seed, key[k]);
  }
  return seed;
}

size_t FactStore::KeyHashAt(const Relation& rel, uint32_t mask,
                            uint32_t row) const {
  size_t seed = MaskSeed(mask);
  for (uint32_t m = mask; m != 0; m &= m - 1) {
    int pos = __builtin_ctz(m);
    HashCombine(&seed, rel.columns[static_cast<size_t>(pos)][row]);
  }
  return seed;
}

bool FactStore::KeyEqualsAt(const Relation& rel, uint32_t mask, uint32_t row,
                            const ElementId* key) const {
  size_t k = 0;
  for (uint32_t m = mask; m != 0; m &= m - 1, ++k) {
    int pos = __builtin_ctz(m);
    if (rel.columns[static_cast<size_t>(pos)][row] != key[k]) return false;
  }
  return true;
}

bool FactStore::RowsKeyEqual(const Relation& rel, uint32_t mask, uint32_t a,
                             uint32_t b) const {
  for (uint32_t m = mask; m != 0; m &= m - 1) {
    size_t pos = static_cast<size_t>(__builtin_ctz(m));
    if (rel.columns[pos][a] != rel.columns[pos][b]) return false;
  }
  return true;
}

uint32_t FactStore::FindBucket(const Relation& rel, const PatternIndex& index,
                               size_t hash, const ElementId* key) const {
  if (index.slots.empty()) return kNoBucket;
  size_t slot_mask = index.slots.size() - 1;
  for (size_t i = hash & slot_mask;; i = (i + 1) & slot_mask) {
    uint32_t entry = index.slots[i];
    if (entry == 0) return kNoBucket;
    const Bucket& bucket = index.buckets[entry - 1];
    if (bucket.hash == hash && KeyEqualsAt(rel, index.mask, bucket.head, key)) {
      return entry - 1;
    }
  }
}

void FactStore::RehashSlots(Relation* rel, PatternIndex* index,
                            size_t slot_count) {
  index->slots.clear();
  index->slots.append_fill(slot_count, 0, &rel->arena);
  size_t slot_mask = slot_count - 1;
  for (size_t b = 0; b < index->buckets.size(); ++b) {
    size_t i = index->buckets[b].hash & slot_mask;
    while (index->slots[i] != 0) i = (i + 1) & slot_mask;
    index->slots[i] = static_cast<uint32_t>(b) + 1;
  }
}

void FactStore::InsertRow(Relation* rel, PatternIndex* index, uint32_t row,
                          size_t hash) {
  // `next` covers exactly rows [0, num_rows): BuildIndex inserts every
  // existing row and Add inserts each new row into every built index.
  index->next.push_back(kNoRow, &rel->arena);
  // Append to an existing bucket's chain (insertion order is the chain
  // order — this is what keeps indexed enumeration bit-identical to a
  // filtered full scan).
  if (!index->slots.empty()) {
    size_t slot_mask = index->slots.size() - 1;
    for (size_t i = hash & slot_mask; index->slots[i] != 0;
         i = (i + 1) & slot_mask) {
      Bucket& bucket = index->buckets[index->slots[i] - 1];
      if (bucket.hash == hash &&
          RowsKeyEqual(*rel, index->mask, bucket.head, row)) {
        index->next[bucket.tail] = row;
        bucket.tail = row;
        return;
      }
    }
  }
  // New key: new bucket, keeping slot load at most 1/2.
  if ((index->buckets.size() + 1) * 2 > index->slots.size()) {
    RehashSlots(rel, index,
                index->slots.empty() ? 16 : index->slots.size() * 2);
  }
  index->buckets.push_back(Bucket{hash, row, row}, &rel->arena);
  size_t slot_mask = index->slots.size() - 1;
  size_t i = hash & slot_mask;
  while (index->slots[i] != 0) i = (i + 1) & slot_mask;
  index->slots[i] = static_cast<uint32_t>(index->buckets.size());
}

void FactStore::BuildIndex(Relation* rel, PatternIndex* index, uint32_t mask) {
  index->mask = mask;
  for (uint32_t row = 0; row < rel->num_rows; ++row) {
    InsertRow(rel, index, row, KeyHashAt(*rel, mask, row));
  }
}

bool FactStore::Add(PredicateId p, const Tuple& t) {
  Relation& rel = relations_[static_cast<size_t>(p)];
  TREEDL_DCHECK(t.size() == static_cast<size_t>(rel.arity));
  if (rel.arity == 0) {
    // Nullary relation: a single possible (empty) tuple, no columns.
    if (rel.num_rows > 0) return false;
    rel.num_rows = 1;
    ++total_;
    return true;
  }
  size_t hash = KeyHash(rel.full_mask, t.data());
  if (FindBucket(rel, rel.dedup, hash, t.data()) != kNoBucket) return false;
  uint32_t row = rel.num_rows++;
  for (int pos = 0; pos < rel.arity; ++pos) {
    rel.columns[static_cast<size_t>(pos)].push_back(
        t[static_cast<size_t>(pos)], &rel.arena);
  }
  InsertRow(&rel, &rel.dedup, row, hash);
  for (PatternIndex& index : rel.indexes) {
    InsertRow(&rel, &index, row, KeyHashAt(rel, index.mask, row));
  }
  ++total_;
  return true;
}

bool FactStore::Contains(PredicateId p, const Tuple& t) const {
  return FindRow(p, t) != kNoRow;
}

Tuple FactStore::Row(PredicateId p, uint32_t row) const {
  const Relation& rel = relations_[static_cast<size_t>(p)];
  Tuple out(static_cast<size_t>(rel.arity));
  for (int pos = 0; pos < rel.arity; ++pos) {
    out[static_cast<size_t>(pos)] = rel.columns[static_cast<size_t>(pos)][row];
  }
  return out;
}

uint32_t FactStore::FindRow(PredicateId p, const Tuple& t) const {
  const Relation& rel = relations_[static_cast<size_t>(p)];
  TREEDL_DCHECK(t.size() == static_cast<size_t>(rel.arity));
  if (rel.arity == 0) return rel.num_rows > 0 ? 0 : kNoRow;
  uint32_t bucket =
      FindBucket(rel, rel.dedup, KeyHash(rel.full_mask, t.data()), t.data());
  return bucket == kNoBucket ? kNoRow : rel.dedup.buckets[bucket].head;
}

void FactStore::EnsureIndex(PredicateId p, uint32_t mask) {
  Relation& rel = relations_[static_cast<size_t>(p)];
  // The dedup index already serves fully-bound probes; mask 0 is a scan.
  if (mask == 0 || mask == rel.full_mask) return;
  for (const PatternIndex& index : rel.indexes) {
    if (index.mask == mask) return;
  }
  rel.indexes.emplace_back();
  BuildIndex(&rel, &rel.indexes.back(), mask);
}

uint32_t FactStore::Probe(PredicateId p, uint32_t mask, const ElementId* key) {
  Relation& rel = relations_[static_cast<size_t>(p)];
  TREEDL_DCHECK(mask != 0);
  const PatternIndex* index = nullptr;
  if (mask == rel.full_mask) {
    index = &rel.dedup;
  } else {
    EnsureIndex(p, mask);
    for (const PatternIndex& candidate : rel.indexes) {
      if (candidate.mask == mask) {
        index = &candidate;
        break;
      }
    }
  }
  uint32_t bucket = FindBucket(rel, *index, KeyHash(mask, key), key);
  return bucket == kNoBucket ? kNoRow : index->buckets[bucket].head;
}

uint32_t FactStore::NextRow(PredicateId p, uint32_t mask, uint32_t row) const {
  const Relation& rel = relations_[static_cast<size_t>(p)];
  if (mask == rel.full_mask) return rel.dedup.next[row];
  for (const PatternIndex& index : rel.indexes) {
    if (index.mask == mask) return index.next[row];
  }
  TREEDL_CHECK(false) << "NextRow on an unbuilt index";
  return kNoRow;
}

ResolvedAtom ResolveAtom(const Atom& atom, Structure* domain) {
  ResolvedAtom out;
  out.predicate = atom.predicate;
  out.const_args.reserve(atom.args.size());
  out.vars.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    if (t.IsVar()) {
      out.const_args.push_back(kUnbound);
      out.vars.push_back(t.variable);
    } else {
      // Constants mentioned only in the program are interned into the domain
      // (they simply never match EDB facts unless the EDB also uses them).
      out.const_args.push_back(domain->AddElement(t.constant));
      out.vars.push_back(-1);
    }
  }
  return out;
}

bool FullyBound(const ResolvedAtom& atom, const Binding& binding) {
  for (size_t i = 0; i < atom.vars.size(); ++i) {
    if (atom.vars[i] >= 0 &&
        binding[static_cast<size_t>(atom.vars[i])] == kUnbound) {
      return false;
    }
  }
  return true;
}

Tuple GroundArgs(const ResolvedAtom& atom, const Binding& binding) {
  Tuple out(atom.const_args.size());
  for (size_t i = 0; i < atom.const_args.size(); ++i) {
    if (atom.vars[i] >= 0) {
      out[i] = binding[static_cast<size_t>(atom.vars[i])];
      TREEDL_DCHECK(out[i] != kUnbound);
    } else {
      out[i] = atom.const_args[i];
    }
  }
  return out;
}

size_t MatchAtom(FactStore* store, const ResolvedAtom& atom, Binding* binding,
                 const std::function<bool(void)>& yield) {
  return MatchAtomInRange(store, atom, binding, 0,
                          std::numeric_limits<size_t>::max(), yield);
}

int ProbePosition(const ResolvedAtom& atom,
                  const std::function<bool(VariableId)>& is_bound) {
  for (size_t i = 0; i < atom.const_args.size(); ++i) {
    if (atom.vars[i] < 0 || is_bound(atom.vars[i])) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t MatchAtomInRange(FactStore* store, const ResolvedAtom& atom,
                        Binding* binding, size_t begin, size_t end,
                        const std::function<bool(void)>& yield) {
  // Pick a bound column for index access, if any. This per-tuple runtime
  // decision is the interpreted path the compiled executors
  // (datalog/executor.hpp) are differentially tested against.
  int index_pos = ProbePosition(atom, [&](VariableId var) {
    return (*binding)[static_cast<size_t>(var)] != kUnbound;
  });

  const size_t num_rows = store->NumTuples(atom.predicate);
  const int arity = store->Arity(atom.predicate);

  // Candidate rows: the single-column index chain, or the [begin, end)
  // slice of the relation. Both enumerate in row-insertion order.
  uint32_t chain_row = FactStore::kNoRow;
  uint32_t probe_mask = 0;
  size_t scan_row = 0;
  size_t scan_end = 0;
  if (index_pos >= 0) {
    ElementId index_value = atom.const_args[static_cast<size_t>(index_pos)];
    if (atom.vars[static_cast<size_t>(index_pos)] >= 0) {
      index_value = (*binding)[static_cast<size_t>(
          atom.vars[static_cast<size_t>(index_pos)])];
    }
    probe_mask = 1u << index_pos;
    chain_row = store->Probe(atom.predicate, probe_mask, &index_value);
  } else {
    scan_row = std::min(begin, num_rows);
    scan_end = std::min(end, num_rows);
  }

  size_t matches = 0;
  for (;;) {
    size_t idx;
    if (index_pos >= 0) {
      if (chain_row == FactStore::kNoRow) break;
      idx = chain_row;
      chain_row = store->NextRow(atom.predicate, probe_mask, chain_row);
    } else {
      if (scan_row >= scan_end) break;
      idx = scan_row++;
    }
    if (idx < begin || idx >= end) continue;
    // Attempt unification, remembering which variables this row binds.
    std::vector<VariableId> newly_bound;
    bool ok = true;
    for (int i = 0; i < arity && ok; ++i) {
      ElementId value =
          store->At(atom.predicate, i, static_cast<uint32_t>(idx));
      VariableId var = atom.vars[static_cast<size_t>(i)];
      if (var < 0) {
        ok = atom.const_args[static_cast<size_t>(i)] == value;
        continue;
      }
      ElementId& slot = (*binding)[static_cast<size_t>(var)];
      if (slot == kUnbound) {
        slot = value;
        newly_bound.push_back(var);
      } else {
        ok = slot == value;
      }
    }
    bool keep_going = true;
    if (ok) {
      ++matches;
      keep_going = yield();
    }
    for (VariableId var : newly_bound) {
      (*binding)[static_cast<size_t>(var)] = kUnbound;
    }
    if (ok && !keep_going) break;
  }
  return matches;
}

}  // namespace treedl::datalog
