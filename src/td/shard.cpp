#include "td/shard.hpp"

#include <algorithm>

namespace treedl {

namespace {

/// Shared partition kernel: post-order accumulation of per-node weights,
/// sealing a connected shard whenever the open (unsealed) weight of a
/// subtree reaches grain = ceil(total / target). The root seals whatever
/// remains. Weight 1 per node reproduces the node-count sharding.
BagSharding ComputeWeightedSharding(const NormalizedTreeDecomposition& ntd,
                                    size_t target_shards,
                                    const std::vector<uint64_t>& weight) {
  BagSharding out;
  size_t n = ntd.NumNodes();
  out.shard_of.assign(n, -1);
  if (n == 0) return out;
  if (target_shards == 0) target_shards = 1;
  uint64_t total = 0;
  for (uint64_t w : weight) total += w;
  uint64_t grain = (total + target_shards - 1) / target_shards;
  if (grain == 0) grain = 1;

  std::vector<TdNodeId> post = ntd.PostOrder();
  std::vector<size_t> post_index(n, 0);
  for (size_t i = 0; i < post.size(); ++i) {
    post_index[static_cast<size_t>(post[i])] = i;
  }

  // Seals a shard rooted at `top`: claims every descendant still reachable
  // through unsealed nodes, listed in global post-order.
  auto seal = [&](TdNodeId top) {
    int id = static_cast<int>(out.shards.size());
    BagShard shard;
    shard.top = top;
    std::vector<TdNodeId> stack{top};
    while (!stack.empty()) {
      TdNodeId v = stack.back();
      stack.pop_back();
      out.shard_of[static_cast<size_t>(v)] = id;
      shard.nodes.push_back(v);
      shard.cost += weight[static_cast<size_t>(v)];
      for (TdNodeId c : ntd.node(v).children) {
        if (out.shard_of[static_cast<size_t>(c)] == -1) stack.push_back(c);
      }
    }
    std::sort(shard.nodes.begin(), shard.nodes.end(),
              [&](TdNodeId a, TdNodeId b) {
                return post_index[static_cast<size_t>(a)] <
                       post_index[static_cast<size_t>(b)];
              });
    out.shards.push_back(std::move(shard));
  };

  std::vector<uint64_t> open_weight(n, 0);
  for (TdNodeId id : post) {
    uint64_t open = weight[static_cast<size_t>(id)];
    for (TdNodeId c : ntd.node(id).children) {
      if (out.shard_of[static_cast<size_t>(c)] == -1) {
        open += open_weight[static_cast<size_t>(c)];
      }
    }
    open_weight[static_cast<size_t>(id)] = open;
    if (id == ntd.root()) {
      seal(id);
    } else if (open >= grain) {
      seal(id);
    }
  }

  // Shard tree edges: a shard's parent is the shard holding its top's parent.
  for (size_t s = 0; s < out.shards.size(); ++s) {
    TdNodeId parent_node = ntd.node(out.shards[s].top).parent;
    if (parent_node == kNoTdNode) {
      out.shards[s].parent = -1;
      continue;
    }
    int parent_shard = out.shard_of[static_cast<size_t>(parent_node)];
    out.shards[s].parent = parent_shard;
    out.shards[static_cast<size_t>(parent_shard)].children.push_back(
        static_cast<int>(s));
  }
  return out;
}

}  // namespace

BagSharding ComputeBagSharding(const NormalizedTreeDecomposition& ntd,
                               size_t target_shards) {
  std::vector<uint64_t> ones(ntd.NumNodes(), 1);
  return ComputeWeightedSharding(ntd, target_shards, ones);
}

uint64_t EstimateNodeCost(const NormNode& node) {
  size_t b = std::min<size_t>(node.bag.size(), 20);
  uint64_t states = 1;
  for (size_t i = 0; i < b; ++i) states *= 3;
  return node.kind == NormNodeKind::kBranch ? 2 * states : states;
}

BagSharding ComputeBagShardingByCost(const NormalizedTreeDecomposition& ntd,
                                     size_t target_shards) {
  std::vector<uint64_t> cost(ntd.NumNodes(), 0);
  for (size_t v = 0; v < ntd.NumNodes(); ++v) {
    cost[v] = EstimateNodeCost(ntd.node(static_cast<TdNodeId>(v)));
  }
  return ComputeWeightedSharding(ntd, target_shards, cost);
}

Status ValidateSharding(const NormalizedTreeDecomposition& ntd,
                        const BagSharding& sharding) {
  size_t n = ntd.NumNodes();
  if (sharding.shard_of.size() != n) {
    return Status::InvalidArgument("shard_of size != node count");
  }
  std::vector<size_t> seen(sharding.NumShards(), 0);
  for (size_t v = 0; v < n; ++v) {
    int s = sharding.shard_of[v];
    if (s < 0 || static_cast<size_t>(s) >= sharding.NumShards()) {
      return Status::InvalidArgument("node with out-of-range shard id");
    }
    ++seen[static_cast<size_t>(s)];
  }
  std::vector<size_t> post_index(n, 0);
  {
    std::vector<TdNodeId> post = ntd.PostOrder();
    for (size_t i = 0; i < post.size(); ++i) {
      post_index[static_cast<size_t>(post[i])] = i;
    }
  }
  for (size_t s = 0; s < sharding.NumShards(); ++s) {
    const BagShard& shard = sharding.shards[s];
    if (shard.nodes.size() != seen[s]) {
      return Status::InvalidArgument("shard node list disagrees with shard_of");
    }
    if (shard.nodes.empty()) {
      return Status::InvalidArgument("empty shard");
    }
    for (size_t i = 0; i < shard.nodes.size(); ++i) {
      TdNodeId v = shard.nodes[i];
      if (sharding.shard_of[static_cast<size_t>(v)] != static_cast<int>(s)) {
        return Status::InvalidArgument("shard lists a foreign node");
      }
      if (i > 0 && post_index[static_cast<size_t>(shard.nodes[i - 1])] >=
                       post_index[static_cast<size_t>(v)]) {
        return Status::InvalidArgument("shard nodes not in global post-order");
      }
      // Connectivity: every node except the top has its parent in the shard.
      if (v != shard.top) {
        TdNodeId p = ntd.node(v).parent;
        if (p == kNoTdNode ||
            sharding.shard_of[static_cast<size_t>(p)] != static_cast<int>(s)) {
          return Status::InvalidArgument("shard region is not connected");
        }
      }
    }
    TdNodeId top_parent = ntd.node(shard.top).parent;
    if (top_parent == kNoTdNode) {
      if (shard.parent != -1) {
        return Status::InvalidArgument("root shard with a parent");
      }
    } else if (shard.parent !=
               sharding.shard_of[static_cast<size_t>(top_parent)]) {
      return Status::InvalidArgument("shard parent edge mismatch");
    }
  }
  return Status::OK();
}

}  // namespace treedl
