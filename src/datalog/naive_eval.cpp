// Naive (jacobi) fixpoint over the *interpreted* ApplyRule kernel.
//
// Deliberately not ported to the compiled executors: this engine is the
// reference oracle the differential harness (tests/datalog_executor_test.cpp)
// pins the compiled semi-naive engine's model against, so the two paths must
// stay independent implementations of the same semantics.
#include "common/logging.hpp"
#include "datalog/eval.hpp"
#include "datalog/eval_internal.hpp"

namespace treedl::datalog {

StatusOr<Structure> NaiveEvaluate(const Program& program, const Structure& edb,
                                  RunStats* stats) {
  if (stats != nullptr) *stats = RunStats{};
  TREEDL_ASSIGN_OR_RETURN(internal::PreparedProgram prep,
                          internal::Prepare(program, edb));
  EvalStats local;
  bool changed = true;
  while (changed) {
    changed = false;
    ++local.iterations;
    // Collect derivations per round, then insert (jacobi-style; insertion
    // order does not affect the least fixpoint).
    std::vector<std::pair<PredicateId, Tuple>> pending;
    for (const internal::PreparedRule& rule : prep.rules) {
      local.rule_applications += internal::ApplyRule(
          rule, &prep.store, /*delta=*/nullptr, /*delta_position=*/-1,
          prep.num_variables, [&](const Tuple& tuple) {
            pending.emplace_back(rule.head.predicate, tuple);
          });
    }
    for (auto& [pred, tuple] : pending) {
      if (prep.store.Add(pred, tuple)) {
        changed = true;
        ++local.derived_facts;
        Status st = prep.result.AddFact(pred, tuple);
        TREEDL_CHECK(st.ok()) << st.ToString();
      }
    }
  }
  if (stats != nullptr) {
    stats->eval_iterations += local.iterations;
    stats->derived_facts += local.derived_facts;
    stats->rule_applications += local.rule_applications;
  }
  return std::move(prep.result);
}

StatusOr<Structure> NaiveEvaluate(const Program& program, const Structure& edb,
                                  EvalStats* stats) {
  RunStats run;
  auto result = NaiveEvaluate(program, edb, &run);
  if (stats != nullptr) {
    stats->iterations = run.eval_iterations;
    stats->derived_facts = run.derived_facts;
    stats->rule_applications = run.rule_applications;
  }
  return result;
}

}  // namespace treedl::datalog
