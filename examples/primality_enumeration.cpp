// PRIMALITY enumeration (§5.3) on a Table 1-scale instance: 31 FDs and 93
// attributes in a balanced width-3 decomposition, far beyond the reach of
// exponential methods, solved by one bottom-up + one top-down pass through
// an Engine session (the instance's own decomposition is injected via
// EngineOptions::decomposition).
#include <iostream>

#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "schema/generators.hpp"

int main() {
  using namespace treedl;
  BalancedInstance inst = GenerateBalancedInstance(31);
  std::cout << "Balanced §6 instance: " << inst.schema.NumAttributes()
            << " attributes, " << inst.schema.NumFds()
            << " FDs, decomposition width " << inst.td.Width() << " with "
            << inst.td.NumNodes() << " raw nodes\n";

  EngineOptions options;
  options.decomposition = inst.td;
  Engine engine(inst.schema, options);

  Timer timer;
  RunStats run;
  auto primes = engine.AllPrimes(&run);
  double ms = timer.ElapsedMillis();
  if (!primes.ok()) {
    std::cerr << "enumeration failed: " << primes.status() << "\n";
    return 1;
  }
  size_t count = 0;
  for (bool p : *primes) count += p;
  std::cout << "Enumerated primes in " << ms << " ms (" << count << " of "
            << primes->size() << " attributes are prime; " << run.dp_states
            << " solve() facts materialized, max "
            << run.dp_max_states_per_node << " per node)\n";

  // A follow-up decision query answers from the memoized enumeration.
  RunStats decide;
  auto x1 = inst.schema.AttributeByName("x1");
  if (x1.ok() && engine.IsPrime(*x1, &decide).ok()) {
    std::cout << "Follow-up IsPrime(x1): " << decide.cache_hits
              << " cache hit(s), " << decide.dp_states
              << " new DP states (answered from the memoized enumeration)\n";
  }

  std::cout << "Sample: ";
  for (const char* name : {"x1", "y1", "z1", "x7", "z31"}) {
    auto a = inst.schema.AttributeByName(name);
    if (a.ok()) {
      std::cout << name << "="
                << ((*primes)[static_cast<size_t>(*a)] ? "prime" : "non-prime")
                << "  ";
    }
  }
  std::cout << "\n(expected: every x*/y* prime, every z* non-prime)\n";
  return 0;
}
