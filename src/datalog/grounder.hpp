// Grounding-based evaluation of quasi-guarded programs (Thm 4.4).
//
// Phase 1 (grounding): for every rule, enumerate the quasi-guard atom over
// the EDB; all remaining variables are functionally determined through the
// other extensional atoms (child1/child2/bag lookups resolve them in O(1)
// via column indexes). Extensional literals — positive and negative — are
// decided at grounding time; what remains is a ground propositional Horn
// clause over intensional atoms. The number of ground instances per rule is
// O(|A|), so the ground program has size O(|P| · |A|).
//
// Phase 2 (solving): LTUR unit propagation over the ground Horn program,
// linear in its size.
#ifndef TREEDL_DATALOG_GROUNDER_HPP_
#define TREEDL_DATALOG_GROUNDER_HPP_

#include "common/status.hpp"
#include "datalog/ast.hpp"
#include "datalog/ltur.hpp"
#include "engine/run_stats.hpp"
#include "structure/structure.hpp"

namespace treedl::datalog {

/// Deprecated: retained for out-of-tree callers; the same numbers live in
/// RunStats (ground_clauses / ground_atoms / guard_instantiations).
struct GroundingStats {
  size_t ground_clauses = 0;
  size_t ground_atoms = 0;
  size_t guard_instantiations = 0;
};

/// Semantics identical to SemiNaiveEvaluate, restricted to quasi-guarded
/// programs (fails with InvalidArgument otherwise).
StatusOr<Structure> GroundedEvaluate(const Program& program,
                                     const Structure& edb,
                                     RunStats* stats = nullptr);

/// Deprecated shim: forwards into the RunStats form.
StatusOr<Structure> GroundedEvaluate(const Program& program,
                                     const Structure& edb,
                                     GroundingStats* stats);

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_GROUNDER_HPP_
