// Reconstructs the paper's figures:
//   Fig. 1 — a width-2 tree decomposition of the Ex 2.2 structure,
//   Fig. 2 — its Def 2.3 tuple normal form,
//   Fig. 3 — induced substructures I(A, T_s, s) and I(A, T̄_s, s),
//   Fig. 4 — the §5 modified normal form,
//   Fig. 5/6 — the datalog program listings.
#include <iostream>

#include "core/program_listings.hpp"
#include "engine/engine.hpp"
#include "schema/encode.hpp"
#include "schema/schema.hpp"
#include "structure/structure_io.hpp"
#include "td/normalize.hpp"
#include "td/td_io.hpp"

int main() {
  using namespace treedl;
  Schema schema = Schema::PaperExampleSchema();
  SchemaEncoding encoding = EncodeSchema(schema);
  const Structure& a = encoding.structure;
  ElementNamer namer = NamerFor(a);

  std::cout << "== The Ex 2.2 structure A ==\n" << FormatStructure(a) << "\n";

  // The session decomposition of an Engine over the same schema is exactly
  // the Figure 1 decomposition (min-fill over the Gaifman graph of A).
  Engine session(schema);
  auto raw = session.Decomposition();
  if (!raw.ok()) {
    std::cerr << raw.status() << "\n";
    return 1;
  }
  std::cout << "== Figure 1: tree decomposition of A (width " << (*raw)->Width()
            << ") ==\n"
            << RenderTree(**raw, namer) << "\n";

  auto tuple = NormalizeTuple(**raw);
  if (!tuple.ok()) {
    std::cerr << tuple.status() << "\n";
    return 1;
  }
  std::cout << "== Figure 2: tuple normal form (Def 2.3; " << tuple->NumNodes()
            << " nodes) ==\n"
            << RenderTree(*tuple, namer) << "\n";

  // Figure 3: pick the node whose bag is {c, f3} if present, else any
  // internal node, and show the two induced substructures.
  TdNodeId s = (*raw)->node((*raw)->root()).children.empty()
                   ? (*raw)->root()
                   : (*raw)->node((*raw)->root()).children[0];
  std::vector<ElementId> bag;
  Structure down = InducedStructure(a, **raw, s, /*envelope=*/false, &bag);
  Structure up = InducedStructure(a, **raw, s, /*envelope=*/true, &bag);
  std::cout << "== Figure 3: induced substructures at node n" << s << " ==\n";
  std::cout << "-- I(A, T_s, s) (subtree):\n" << FormatStructure(down);
  std::cout << "-- I(A, T̄_s, s) (envelope):\n" << FormatStructure(up) << "\n";

  NormalizeOptions options;
  auto norm = Normalize(**raw, options);
  if (!norm.ok()) {
    std::cerr << norm.status() << "\n";
    return 1;
  }
  std::cout << "== Figure 4: modified normal form (§5; " << norm->NumNodes()
            << " nodes) ==\n"
            << RenderTree(*norm, namer) << "\n";

  std::cout << "== Figure 5 ==\n"
            << core::ThreeColorabilityProgramListing() << "\n";
  std::cout << "== Figure 6 ==\n" << core::PrimalityProgramListing() << "\n";
  std::cout << "== §5.3 ==\n" << core::MonadicPrimalityProgramListing();
  return 0;
}
