#include "mso/evaluator.hpp"

namespace treedl::mso {

namespace {

class Evaluator {
 public:
  Evaluator(const Structure& structure, const EvalOptions& options)
      : structure_(structure), options_(options) {}

  StatusOr<bool> Eval(const Formula& f, Assignment* env) {
    ++work_;
    if (options_.work_budget != 0 && work_ > options_.work_budget) {
      return Status::ResourceExhausted(
          "MSO evaluation exceeded its work budget of " +
          std::to_string(options_.work_budget));
    }
    switch (f.kind) {
      case FormulaKind::kAtom: {
        TREEDL_ASSIGN_OR_RETURN(
            PredicateId pid, structure_.signature().PredicateIdOf(f.predicate));
        if (structure_.signature().arity(pid) !=
            static_cast<int>(f.args.size())) {
          return Status::InvalidArgument("arity mismatch in atom " +
                                         f.predicate);
        }
        Tuple tuple;
        tuple.reserve(f.args.size());
        for (const std::string& v : f.args) {
          TREEDL_ASSIGN_OR_RETURN(ElementId e, LookupFo(*env, v));
          tuple.push_back(e);
        }
        return structure_.HasFact(pid, tuple);
      }
      case FormulaKind::kEqual: {
        TREEDL_ASSIGN_OR_RETURN(ElementId a, LookupFo(*env, f.args[0]));
        TREEDL_ASSIGN_OR_RETURN(ElementId b, LookupFo(*env, f.args[1]));
        return a == b;
      }
      case FormulaKind::kIn: {
        TREEDL_ASSIGN_OR_RETURN(ElementId a, LookupFo(*env, f.args[0]));
        TREEDL_ASSIGN_OR_RETURN(SmallBitset s, LookupSo(*env, f.args[1]));
        return s.Test(static_cast<int>(a));
      }
      case FormulaKind::kSubseteq: {
        TREEDL_ASSIGN_OR_RETURN(SmallBitset a, LookupSo(*env, f.args[0]));
        TREEDL_ASSIGN_OR_RETURN(SmallBitset b, LookupSo(*env, f.args[1]));
        return a.IsSubsetOf(b);
      }
      case FormulaKind::kNot: {
        TREEDL_ASSIGN_OR_RETURN(bool v, Eval(*f.left, env));
        return !v;
      }
      case FormulaKind::kAnd: {
        TREEDL_ASSIGN_OR_RETURN(bool a, Eval(*f.left, env));
        if (!a) return false;
        return Eval(*f.right, env);
      }
      case FormulaKind::kOr: {
        TREEDL_ASSIGN_OR_RETURN(bool a, Eval(*f.left, env));
        if (a) return true;
        return Eval(*f.right, env);
      }
      case FormulaKind::kImplies: {
        TREEDL_ASSIGN_OR_RETURN(bool a, Eval(*f.left, env));
        if (!a) return true;
        return Eval(*f.right, env);
      }
      case FormulaKind::kIff: {
        TREEDL_ASSIGN_OR_RETURN(bool a, Eval(*f.left, env));
        TREEDL_ASSIGN_OR_RETURN(bool b, Eval(*f.right, env));
        return a == b;
      }
      case FormulaKind::kExistsFo:
      case FormulaKind::kForallFo: {
        bool exists = f.kind == FormulaKind::kExistsFo;
        auto saved = SaveFo(*env, f.bound);
        for (ElementId e = 0; e < structure_.NumElements(); ++e) {
          env->fo[f.bound] = e;
          auto v = Eval(*f.left, env);
          if (!v.ok()) {
            RestoreFo(env, f.bound, saved);
            return v.status();
          }
          if (*v == exists) {
            RestoreFo(env, f.bound, saved);
            return exists;
          }
        }
        RestoreFo(env, f.bound, saved);
        return !exists;
      }
      case FormulaKind::kExistsSo:
      case FormulaKind::kForallSo: {
        bool exists = f.kind == FormulaKind::kExistsSo;
        size_t n = structure_.NumElements();
        if (n >= 64) {
          // 2^64 subsets can never be enumerated; fail loudly instead of
          // silently truncating.
          return Status::OutOfRange(
              "set quantification requires a domain of < 64 elements");
        }
        auto saved = SaveSo(*env, f.bound);
        for (uint64_t mask = 0;; ++mask) {
          env->so[f.bound] = SmallBitset(mask);
          auto v = Eval(*f.left, env);
          if (!v.ok()) {
            RestoreSo(env, f.bound, saved);
            return v.status();
          }
          if (*v == exists) {
            RestoreSo(env, f.bound, saved);
            return exists;
          }
          // Advance; stop after the all-ones mask.
          if (mask + 1 == (uint64_t{1} << n)) break;
        }
        RestoreSo(env, f.bound, saved);
        return !exists;
      }
    }
    return Status::Internal("unknown formula kind");
  }

  uint64_t work() const { return work_; }

 private:
  StatusOr<ElementId> LookupFo(const Assignment& env, const std::string& v) {
    auto it = env.fo.find(v);
    if (it == env.fo.end()) {
      return Status::InvalidArgument("unbound individual variable: " + v);
    }
    return it->second;
  }
  StatusOr<SmallBitset> LookupSo(const Assignment& env, const std::string& v) {
    auto it = env.so.find(v);
    if (it == env.so.end()) {
      return Status::InvalidArgument("unbound set variable: " + v);
    }
    return it->second;
  }
  static std::optional<ElementId> SaveFo(const Assignment& env,
                                         const std::string& v) {
    auto it = env.fo.find(v);
    if (it == env.fo.end()) return std::nullopt;
    return it->second;
  }
  static void RestoreFo(Assignment* env, const std::string& v,
                        std::optional<ElementId> saved) {
    if (saved.has_value()) {
      env->fo[v] = *saved;
    } else {
      env->fo.erase(v);
    }
  }
  static std::optional<SmallBitset> SaveSo(const Assignment& env,
                                           const std::string& v) {
    auto it = env.so.find(v);
    if (it == env.so.end()) return std::nullopt;
    return it->second;
  }
  static void RestoreSo(Assignment* env, const std::string& v,
                        std::optional<SmallBitset> saved) {
    if (saved.has_value()) {
      env->so[v] = *saved;
    } else {
      env->so.erase(v);
    }
  }

  const Structure& structure_;
  const EvalOptions& options_;
  uint64_t work_ = 0;
};

}  // namespace

StatusOr<bool> Evaluate(const Structure& structure, const Formula& f,
                        const Assignment& assignment, const EvalOptions& options,
                        EvalUsage* usage) {
  if (structure.NumElements() > SmallBitset::kCapacity) {
    return Status::OutOfRange(
        "MSO evaluation limited to 64-element domains (got " +
        std::to_string(structure.NumElements()) + ")");
  }
  Evaluator evaluator(structure, options);
  Assignment env = assignment;
  auto result = evaluator.Eval(f, &env);
  if (usage != nullptr) usage->work = evaluator.work();
  return result;
}

StatusOr<bool> EvaluateSentence(const Structure& structure, const Formula& f,
                                const EvalOptions& options, EvalUsage* usage) {
  FreeVariables free = ComputeFreeVariables(f);
  if (!free.fo.empty() || !free.so.empty()) {
    return Status::InvalidArgument("formula is not a sentence");
  }
  return Evaluate(structure, f, Assignment{}, options, usage);
}

StatusOr<bool> EvaluateUnary(const Structure& structure, const Formula& f,
                             const std::string& free_var, ElementId element,
                             const EvalOptions& options, EvalUsage* usage) {
  Assignment assignment;
  assignment.fo[free_var] = element;
  return Evaluate(structure, f, assignment, options, usage);
}

}  // namespace treedl::mso
