// Thm 4.4: quasi-guarded datalog evaluates in O(|P|·|A|) via grounding +
// LTUR. Compares the three engines on a quasi-guarded τ_td program over
// growing path inputs; the grounded pipeline should scale linearly and the
// compiled semi-naive engine should stay close behind.
//
// Flags: --quick shrinks the input ladder for CI; --json <path> writes the
// deterministic counters of the largest instance (derived facts, fixpoint
// rounds/tasks, compiled plans, executor dispatches, ground clauses/atoms —
// no wall-clock, so a 1-CPU runner produces meaningful, comparable
// artifacts). The parallel semi-naive run must reproduce the sequential
// model and counters exactly; the bench checks that before writing.
#include <cstdio>
#include <cstring>
#include <functional>

#include "common/timer.hpp"
#include "datalog/eval.hpp"
#include "datalog/parser.hpp"
#include "datalog/tau_td.hpp"
#include "engine/engine.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "td/heuristics.hpp"
#include "td/normalize.hpp"

namespace treedl {
namespace {

struct BenchConfig {
  size_t max_vertices = 512;
  const char* json_path = nullptr;
};

constexpr const char* kProgram =
    "good(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).\n"
    "good(V) :- bag(V, X0, X1), child1(V1, V), good(V1), bag(V1, Y0, Y1).\n"
    "good(V) :- bag(V, X0, X1), child1(V1, V), child2(V2, V), good(V1), "
    "good(V2), bag(V1, X0, X1), bag(V2, X0, X1).\n"
    "success :- root(V), good(V).\n";

Structure Atd(size_t n) {
  Graph g = PathGraph(n);
  Structure a = GraphToStructure(g);
  auto raw = DecomposeStructure(a);
  TREEDL_CHECK(raw.ok());
  auto tuple = NormalizeTuple(*raw);
  TREEDL_CHECK(tuple.ok());
  auto atd = datalog::BuildTauTd(a, *tuple);
  TREEDL_CHECK(atd.ok());
  return std::move(atd->structure);
}

double Once(const std::function<void()>& run) {
  Timer timer;
  run();
  return timer.ElapsedMillis();
}

RunStats Evaluate(const datalog::Program& program, const Structure& atd,
                  DatalogBackend backend, size_t num_threads,
                  Structure* model) {
  EngineOptions options;
  options.num_threads = num_threads;
  Engine engine(atd, options);
  RunStats run;
  auto result = engine.EvaluateDatalog(program, backend, &run);
  TREEDL_CHECK(result.ok()) << result.status();
  if (model != nullptr) *model = std::move(*result);
  return run;
}

}  // namespace

void RunQuasiGuardedBench(const BenchConfig& config) {
  auto program = datalog::ParseProgram(kProgram);
  TREEDL_CHECK(program.ok());

  std::printf("Quasi-guarded tau_td over path graphs: grounded LTUR vs "
              "compiled semi-naive vs naive\n");
  std::printf("%6s %6s %12s %12s %12s\n", "n", "|Atd|", "grounded ms",
              "seminaive ms", "naive ms");
  for (size_t n = 16; n <= config.max_vertices; n *= 2) {
    Structure atd = Atd(n);
    Structure grounded_model{Signature()}, seminaive_model{Signature()},
        naive_model{Signature()};
    double grounded_ms = Once([&] {
      Evaluate(*program, atd, DatalogBackend::kGrounded, 1, &grounded_model);
    });
    double seminaive_ms = Once([&] {
      Evaluate(*program, atd, DatalogBackend::kSemiNaive, 1,
               &seminaive_model);
    });
    // Naive evaluation is quadratic-ish in rounds; keep sizes smaller.
    double naive_ms = -1.0;
    if (n <= 128) {
      naive_ms = Once([&] {
        Evaluate(*program, atd, DatalogBackend::kNaive, 1, &naive_model);
      });
      TREEDL_CHECK(naive_model == seminaive_model)
          << "n=" << n << ": naive and semi-naive models diverged";
    }
    TREEDL_CHECK(grounded_model == seminaive_model)
        << "n=" << n << ": grounded and semi-naive models diverged";
    if (naive_ms >= 0) {
      std::printf("%6zu %6zu %12.2f %12.2f %12.2f\n", n, atd.NumFacts(),
                  grounded_ms, seminaive_ms, naive_ms);
    } else {
      std::printf("%6zu %6zu %12.2f %12.2f %12s\n", n, atd.NumFacts(),
                  grounded_ms, seminaive_ms, "-");
    }
  }
  std::printf("\n(grounded should scale linearly per Thm 4.4, the compiled "
              "semi-naive engine\n close behind; naive pays a full "
              "re-derivation per round)\n");

  // Deterministic counter profile of the largest instance, with the
  // threads=8 semi-naive run pinned bit-identical to the sequential one.
  Structure atd = Atd(config.max_vertices);
  Structure sequential_model{Signature()}, parallel_model{Signature()};
  RunStats grounded =
      Evaluate(*program, atd, DatalogBackend::kGrounded, 1, nullptr);
  RunStats sequential = Evaluate(*program, atd, DatalogBackend::kSemiNaive, 1,
                                 &sequential_model);
  RunStats parallel = Evaluate(*program, atd, DatalogBackend::kSemiNaive, 8,
                               &parallel_model);
  TREEDL_CHECK(parallel_model == sequential_model)
      << "threads=8 semi-naive model diverged from the sequential run";
  TREEDL_CHECK(parallel.derived_facts == sequential.derived_facts &&
               parallel.fixpoint_rounds == sequential.fixpoint_rounds &&
               parallel.fixpoint_rule_tasks == sequential.fixpoint_rule_tasks &&
               parallel.executor_dispatches == sequential.executor_dispatches)
      << "threads=8 semi-naive counters diverged from the sequential run";
  std::printf(
      "\nlargest instance (n=%zu): derived=%zu rounds=%zu rule_tasks=%zu "
      "plans=%zu dispatches=%zu  grounded: clauses=%zu atoms=%zu guards=%zu\n",
      config.max_vertices, sequential.derived_facts,
      sequential.fixpoint_rounds, sequential.fixpoint_rule_tasks,
      sequential.plan_compiles, sequential.executor_dispatches,
      grounded.ground_clauses, grounded.ground_atoms,
      grounded.guard_instantiations);

  if (config.json_path != nullptr) {
    FILE* out = std::fopen(config.json_path, "w");
    TREEDL_CHECK(out != nullptr) << "cannot open " << config.json_path;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"quasi_guarded\",\n"
                 "  \"vertices\": %zu,\n"
                 "  \"atd_facts\": %zu,\n"
                 "  \"derived_facts\": %zu,\n"
                 "  \"fixpoint_rounds\": %zu,\n"
                 "  \"fixpoint_rule_tasks\": %zu,\n"
                 "  \"plan_compiles\": %zu,\n"
                 "  \"executor_dispatches\": %zu,\n"
                 "  \"ground_clauses\": %zu,\n"
                 "  \"ground_atoms\": %zu,\n"
                 "  \"guard_instantiations\": %zu\n"
                 "}\n",
                 config.max_vertices, atd.NumFacts(),
                 sequential.derived_facts, sequential.fixpoint_rounds,
                 sequential.fixpoint_rule_tasks, sequential.plan_compiles,
                 sequential.executor_dispatches, grounded.ground_clauses,
                 grounded.ground_atoms, grounded.guard_instantiations);
    std::fclose(out);
    std::printf("  wrote %s\n", config.json_path);
  }
}

}  // namespace treedl

int main(int argc, char** argv) {
  treedl::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.max_vertices = 128;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    }
  }
  treedl::RunQuasiGuardedBench(config);
  return 0;
}
