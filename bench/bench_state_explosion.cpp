// The motivation of §1/§6 quantified:
//  (a) the generic Thm 4.5 construction saturates for rank 0/1 over a unary
//      signature but explodes over τ = {e/2} even at rank 1;
//  (b) the determinized FTA route materializes one state per *set* of partial
//      solutions, while monadic datalog materializes one fact per partial
//      solution — compared head-to-head on 3-Colorability.
#include <cstdio>

#include "common/timer.hpp"
#include "fta/type_automaton.hpp"
#include "graph/generators.hpp"
#include "mso/formulas.hpp"
#include "mso/parser.hpp"
#include "mso2dl/mso_to_datalog.hpp"
#include "td/heuristics.hpp"

namespace treedl {
namespace {

void GenericConstructionTable() {
  std::printf("(a) Thm 4.5 generic construction: types and program size\n");
  std::printf("%-34s %5s %8s %8s %8s\n", "query / signature", "rank",
              "up-types", "dn-types", "rules");
  Signature unary = Signature::Make({{"p", 1}}).value();
  struct Row {
    const char* label;
    const char* formula;
  };
  for (Row row : {Row{"p(x) over {p/1}", "p(x)"},
                  Row{"p(x) & ex1 y:(y!=x & p(y)) {p/1}",
                      "p(x) & (ex1 y: (~(y = x) & p(y)))"}}) {
    auto phi = mso::ParseFormula(row.formula);
    TREEDL_CHECK(phi.ok());
    mso2dl::Mso2DlOptions options;
    options.width = 1;
    auto result = mso2dl::MsoToDatalog(unary, *phi, "x", options);
    TREEDL_CHECK(result.ok()) << result.status();
    std::printf("%-34s %5d %8zu %8zu %8zu\n", row.label, result->rank,
                result->num_up_types, result->num_down_types,
                result->program.NumRules());
  }
  {
    mso2dl::Mso2DlOptions options;
    options.width = 1;
    options.max_types = 512;
    auto result = mso2dl::MsoToDatalog(Signature::GraphSignature(),
                                       mso::HasNeighborQuery("x"), "x",
                                       options);
    std::printf("%-34s %5d %8s %8s %8s  <- %s\n", "ex1 y: e(x,y) over {e/2}",
                1, ">512", "-", "-", result.status().ToString().c_str());
  }
  std::printf("\n");
}

void FtaVersusDatalogTable() {
  std::printf("(b) 3COL on random partial 3-trees: determinized-FTA states "
              "vs datalog facts\n");
  std::printf("%6s %16s %16s %14s\n", "n", "FTA subset-states",
              "datalog facts", "max subset");
  for (size_t n : {16u, 32u, 64u, 128u, 256u}) {
    Rng rng(n * 31 + 1);
    Graph g = RandomPartialKTree(n, 3, 0.8, &rng);
    auto td = Decompose(g);
    TREEDL_CHECK(td.ok());
    auto usage = fta::MeasureThreeColorAutomaton(g, *td);
    TREEDL_CHECK(usage.ok()) << usage.status();
    std::printf("%6zu %16zu %16zu %14zu\n", n, usage->distinct_subset_states,
                usage->total_facts, usage->max_subset_size);
  }
  std::printf(
      "\n(each distinct subset is one automaton state; an a-priori automaton\n"
      "construction must enumerate all 2^(3^(w+1)) of them, while the datalog\n"
      "program only ever touches reachable individual facts — the paper's\n"
      "optimization (1)/(2) discussion in §6)\n");
}

}  // namespace
}  // namespace treedl

int main() {
  treedl::GenericConstructionTable();
  treedl::FtaVersusDatalogTable();
  return 0;
}
