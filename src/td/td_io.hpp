// Rendering of tree decompositions (raw and normalized) as ASCII trees and
// Graphviz DOT. Used by examples/paper_figures to reproduce Figures 1, 2, 4.
#ifndef TREEDL_TD_TD_IO_HPP_
#define TREEDL_TD_TD_IO_HPP_

#include <functional>
#include <string>

#include "structure/structure.hpp"
#include "td/normalize.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

/// Maps an element id to a display name. Default: "e<id>".
using ElementNamer = std::function<std::string(ElementId)>;

ElementNamer DefaultNamer();
/// Names elements after `structure`'s interned names.
ElementNamer NamerFor(const Structure& structure);

/// ASCII tree, one node per line, children indented, bags in braces.
std::string RenderTree(const TreeDecomposition& td,
                       const ElementNamer& namer = DefaultNamer());
std::string RenderTree(const NormalizedTreeDecomposition& ntd,
                       const ElementNamer& namer = DefaultNamer());
std::string RenderTree(const TupleNormalizedTd& ntd,
                       const ElementNamer& namer = DefaultNamer());

/// Graphviz DOT rendering of a raw decomposition.
std::string ToDot(const TreeDecomposition& td,
                  const ElementNamer& namer = DefaultNamer());

}  // namespace treedl

#endif  // TREEDL_TD_TD_IO_HPP_
