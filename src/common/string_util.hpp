// Small string helpers shared by parsers, renderers and benchmarks.
#ifndef TREEDL_COMMON_STRING_UTIL_HPP_
#define TREEDL_COMMON_STRING_UTIL_HPP_

#include <string>
#include <string_view>
#include <vector>

namespace treedl {

/// Splits on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);

/// True iff `text` is a valid identifier: [A-Za-z_][A-Za-z0-9_']*.
bool IsIdentifier(std::string_view text);

/// `value` as exactly 16 zero-padded lowercase hex digits — the rendering of
/// session fingerprints in protocol replies and session file names.
std::string Hex16(uint64_t value);

}  // namespace treedl

#endif  // TREEDL_COMMON_STRING_UTIL_HPP_
