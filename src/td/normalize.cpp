#include "td/normalize.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hpp"

namespace treedl {

const char* NormNodeKindName(NormNodeKind kind) {
  switch (kind) {
    case NormNodeKind::kLeaf:
      return "leaf";
    case NormNodeKind::kIntroduce:
      return "introduce";
    case NormNodeKind::kForget:
      return "forget";
    case NormNodeKind::kBranch:
      return "branch";
    case NormNodeKind::kCopy:
      return "copy";
  }
  return "?";
}

const char* TupleNodeKindName(TupleNodeKind kind) {
  switch (kind) {
    case TupleNodeKind::kLeaf:
      return "leaf";
    case TupleNodeKind::kPermutation:
      return "permutation";
    case TupleNodeKind::kElementReplacement:
      return "replacement";
    case TupleNodeKind::kBranch:
      return "branch";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// NormalizedTreeDecomposition
// ---------------------------------------------------------------------------

TdNodeId NormalizedTreeDecomposition::AddNode(NormNode node) {
  TdNodeId id = static_cast<TdNodeId>(nodes_.size());
  for (TdNodeId c : node.children) {
    nodes_[static_cast<size_t>(c)].parent = id;
  }
  nodes_.push_back(std::move(node));
  return id;
}

int NormalizedTreeDecomposition::Width() const {
  int width = -1;
  for (const NormNode& n : nodes_) {
    width = std::max(width, static_cast<int>(n.bag.size()) - 1);
  }
  return width;
}

std::vector<TdNodeId> NormalizedTreeDecomposition::PreOrder() const {
  std::vector<TdNodeId> order;
  if (root_ == kNoTdNode) return order;
  order.reserve(nodes_.size());
  std::vector<TdNodeId> stack{root_};
  while (!stack.empty()) {
    TdNodeId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    for (TdNodeId c : node(id).children) stack.push_back(c);
  }
  TREEDL_CHECK(order.size() == nodes_.size()) << "normalized TD not connected";
  return order;
}

std::vector<TdNodeId> NormalizedTreeDecomposition::PostOrder() const {
  std::vector<TdNodeId> order = PreOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<size_t> NormalizedTreeDecomposition::KindCounts() const {
  std::vector<size_t> counts(5, 0);
  for (const NormNode& n : nodes_) {
    counts[static_cast<size_t>(n.kind)] += 1;
  }
  return counts;
}

TreeDecomposition NormalizedTreeDecomposition::ToRaw() const {
  TreeDecomposition raw;
  std::unordered_map<TdNodeId, TdNodeId> translate;
  for (TdNodeId id : PreOrder()) {
    TdNodeId parent = node(id).parent;
    TdNodeId raw_parent =
        parent == kNoTdNode ? kNoTdNode : translate.at(parent);
    translate[id] = raw.AddNode(node(id).bag, raw_parent);
  }
  return raw;
}

namespace {

std::vector<ElementId> SetMinus(const std::vector<ElementId>& a,
                                const std::vector<ElementId>& b) {
  std::vector<ElementId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<ElementId> SetRemove(const std::vector<ElementId>& a, ElementId e) {
  std::vector<ElementId> out;
  out.reserve(a.size());
  for (ElementId x : a) {
    if (x != e) out.push_back(x);
  }
  return out;
}

std::vector<ElementId> SetInsert(const std::vector<ElementId>& a, ElementId e) {
  std::vector<ElementId> out = a;
  out.insert(std::lower_bound(out.begin(), out.end(), e), e);
  return out;
}

// Ensures every element occurs in at least one *leaf* bag by attaching, to
// each node that is the sole carrier of some element, a fresh child with the
// same bag.
TreeDecomposition EnsureLeafCoverage(const TreeDecomposition& td) {
  std::unordered_set<ElementId> in_leaf;
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    TdNodeId id = static_cast<TdNodeId>(i);
    if (td.node(id).children.empty()) {
      for (ElementId e : td.Bag(id)) in_leaf.insert(e);
    }
  }
  // Pick one carrier node per uncovered element; group by node.
  std::unordered_set<TdNodeId> need_child;
  std::unordered_set<ElementId> handled = in_leaf;
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    TdNodeId id = static_cast<TdNodeId>(i);
    for (ElementId e : td.Bag(id)) {
      if (!handled.count(e)) {
        need_child.insert(id);
        // The whole bag of `id` will appear in the new leaf.
        for (ElementId x : td.Bag(id)) handled.insert(x);
      }
    }
  }
  TreeDecomposition out;
  std::unordered_map<TdNodeId, TdNodeId> translate;
  for (TdNodeId id : td.PreOrder()) {
    TdNodeId parent = td.node(id).parent;
    TdNodeId new_parent = parent == kNoTdNode ? kNoTdNode : translate.at(parent);
    translate[id] = out.AddNode(td.Bag(id), new_parent);
    if (need_child.count(id)) {
      out.AddNode(td.Bag(id), translate[id]);
    }
  }
  return out;
}

}  // namespace

StatusOr<NormalizedTreeDecomposition> Normalize(const TreeDecomposition& td,
                                                const NormalizeOptions& options) {
  if (td.Empty()) {
    return Status::InvalidArgument("cannot normalize empty tree decomposition");
  }
  TreeDecomposition source =
      options.ensure_leaf_coverage ? EnsureLeafCoverage(td) : td;

  NormalizedTreeDecomposition out;
  // tops[raw node] = normalized node whose bag equals the raw bag and which
  // roots the normalized subtree representing the raw subtree.
  std::vector<TdNodeId> tops(source.NumNodes(), kNoTdNode);

  // Orders a forget list: higher priority first (introduce lists use the
  // reverse, so higher-priority elements are introduced last).
  auto by_priority = [&options](std::vector<ElementId> elems, bool forget) {
    if (options.forget_priority) {
      std::stable_sort(elems.begin(), elems.end(),
                       [&](ElementId a, ElementId b) {
                         int pa = options.forget_priority(a);
                         int pb = options.forget_priority(b);
                         return forget ? pa > pb : pa < pb;
                       });
    }
    return elems;
  };

  // Lifts the normalized subtree topped by `top` (bag `from`) to bag `to` by
  // a chain of single-element forgets then introduces; returns the new top.
  auto lift = [&out, &by_priority](TdNodeId top, std::vector<ElementId> from,
                                   const std::vector<ElementId>& to) -> TdNodeId {
    for (ElementId e : by_priority(SetMinus(from, to), /*forget=*/true)) {
      from = SetRemove(from, e);
      top = out.AddNode(
          NormNode{NormNodeKind::kForget, e, from, kNoTdNode, {top}});
    }
    for (ElementId e : by_priority(SetMinus(to, from), /*forget=*/false)) {
      from = SetInsert(from, e);
      top = out.AddNode(
          NormNode{NormNodeKind::kIntroduce, e, from, kNoTdNode, {top}});
    }
    return top;
  };

  for (TdNodeId raw : source.PostOrder()) {
    const std::vector<ElementId>& bag = source.Bag(raw);
    const auto& children = source.node(raw).children;
    if (children.empty()) {
      tops[static_cast<size_t>(raw)] =
          out.AddNode(NormNode{NormNodeKind::kLeaf, 0, bag, kNoTdNode, {}});
      continue;
    }
    TdNodeId acc = kNoTdNode;
    for (TdNodeId child : children) {
      TdNodeId lifted =
          lift(tops[static_cast<size_t>(child)], source.Bag(child), bag);
      if (acc == kNoTdNode) {
        acc = lifted;
      } else {
        acc = out.AddNode(
            NormNode{NormNodeKind::kBranch, 0, bag, kNoTdNode, {acc, lifted}});
      }
    }
    tops[static_cast<size_t>(raw)] = acc;
  }
  out.SetRoot(tops[static_cast<size_t>(source.root())]);

  if (options.copy_above_branches) {
    // Collect first: we append nodes while iterating.
    std::vector<TdNodeId> branches;
    for (size_t i = 0; i < out.NumNodes(); ++i) {
      if (out.node(static_cast<TdNodeId>(i)).kind == NormNodeKind::kBranch) {
        branches.push_back(static_cast<TdNodeId>(i));
      }
    }
    for (TdNodeId b : branches) {
      TdNodeId parent = out.node(b).parent;
      if (parent != kNoTdNode &&
          out.node(parent).bag == out.node(b).bag &&
          out.node(parent).children.size() == 1) {
        continue;  // already has an equal-bag unary parent
      }
      TdNodeId copy = out.AddNode(NormNode{
          NormNodeKind::kCopy, 0, out.node(b).bag, kNoTdNode, {b}});
      // AddNode rewired b's parent pointer to `copy`; splice `copy` into the
      // old parent's child list (or make it the new root).
      if (parent == kNoTdNode) {
        out.SetRoot(copy);
      } else {
        out.MutableNode(copy)->parent = parent;
        for (TdNodeId& c : out.MutableNode(parent)->children) {
          if (c == b) c = copy;
        }
      }
    }
  }

  TREEDL_RETURN_IF_ERROR(ValidateNormalized(out));
  return out;
}

Status ValidateNormalized(const NormalizedTreeDecomposition& ntd) {
  if (ntd.NumNodes() == 0 || ntd.root() == kNoTdNode) {
    return Status::InvalidArgument("normalized TD is empty or rootless");
  }
  for (TdNodeId id : ntd.PreOrder()) {
    const NormNode& n = ntd.node(id);
    auto child_bag = [&](size_t i) -> const std::vector<ElementId>& {
      return ntd.Bag(n.children[i]);
    };
    switch (n.kind) {
      case NormNodeKind::kLeaf:
        if (!n.children.empty()) {
          return Status::InvalidArgument("leaf node with children");
        }
        break;
      case NormNodeKind::kIntroduce: {
        if (n.children.size() != 1) {
          return Status::InvalidArgument("introduce node without single child");
        }
        std::vector<ElementId> expect = SetInsert(child_bag(0), n.element);
        if (std::binary_search(child_bag(0).begin(), child_bag(0).end(),
                               n.element) ||
            expect != n.bag) {
          return Status::InvalidArgument(
              "introduce node bag is not child bag + element");
        }
        break;
      }
      case NormNodeKind::kForget: {
        if (n.children.size() != 1) {
          return Status::InvalidArgument("forget node without single child");
        }
        if (!std::binary_search(child_bag(0).begin(), child_bag(0).end(),
                                n.element) ||
            SetRemove(child_bag(0), n.element) != n.bag) {
          return Status::InvalidArgument(
              "forget node bag is not child bag - element");
        }
        break;
      }
      case NormNodeKind::kBranch:
        if (n.children.size() != 2 || child_bag(0) != n.bag ||
            child_bag(1) != n.bag) {
          return Status::InvalidArgument(
              "branch node must have two children with identical bags");
        }
        break;
      case NormNodeKind::kCopy:
        if (n.children.size() != 1 || child_bag(0) != n.bag) {
          return Status::InvalidArgument(
              "copy node must have one child with an identical bag");
        }
        break;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// TupleNormalizedTd
// ---------------------------------------------------------------------------

TdNodeId TupleNormalizedTd::AddNode(TupleNode node) {
  TdNodeId id = static_cast<TdNodeId>(nodes_.size());
  for (TdNodeId c : node.children) {
    nodes_[static_cast<size_t>(c)].parent = id;
  }
  nodes_.push_back(std::move(node));
  return id;
}

std::vector<TdNodeId> TupleNormalizedTd::PreOrder() const {
  std::vector<TdNodeId> order;
  if (root_ == kNoTdNode) return order;
  std::vector<TdNodeId> stack{root_};
  while (!stack.empty()) {
    TdNodeId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    for (TdNodeId c : node(id).children) stack.push_back(c);
  }
  TREEDL_CHECK(order.size() == nodes_.size()) << "tuple TD not connected";
  return order;
}

std::vector<TdNodeId> TupleNormalizedTd::PostOrder() const {
  std::vector<TdNodeId> order = PreOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

TreeDecomposition TupleNormalizedTd::ToRaw() const {
  TreeDecomposition raw;
  std::unordered_map<TdNodeId, TdNodeId> translate;
  for (TdNodeId id : PreOrder()) {
    TdNodeId parent = node(id).parent;
    TdNodeId raw_parent = parent == kNoTdNode ? kNoTdNode : translate.at(parent);
    translate[id] = raw.AddNode(node(id).bag, raw_parent);
  }
  return raw;
}

StatusOr<TupleNormalizedTd> NormalizeTuple(const TreeDecomposition& td) {
  if (td.Empty()) {
    return Status::InvalidArgument("cannot normalize empty tree decomposition");
  }
  int width = td.Width();
  if (width < 0) return Status::InvalidArgument("decomposition has no bags");
  size_t full = static_cast<size_t>(width) + 1;

  // Step 1 (Prop 2.4 (1)): re-root at a node with a full bag and pad all bags
  // to w+1 elements using elements of the (already padded) parent.
  TreeDecomposition padded = td;
  TdNodeId full_node = kNoTdNode;
  for (size_t i = 0; i < padded.NumNodes(); ++i) {
    if (padded.Bag(static_cast<TdNodeId>(i)).size() == full) {
      full_node = static_cast<TdNodeId>(i);
      break;
    }
  }
  TREEDL_CHECK(full_node != kNoTdNode);
  TREEDL_RETURN_IF_ERROR(padded.ReRoot(full_node));
  for (TdNodeId id : padded.PreOrder()) {
    TdNodeId parent = padded.node(id).parent;
    if (parent == kNoTdNode) continue;
    std::vector<ElementId> bag = padded.Bag(id);
    if (bag.size() >= full) continue;
    for (ElementId e : SetMinus(padded.Bag(parent), bag)) {
      if (bag.size() >= full) break;
      bag = SetInsert(bag, e);
    }
    TREEDL_CHECK(bag.size() == full)
        << "padding failed: parent lacks enough extra elements";
    padded.SetBag(id, bag);
  }

  // Step 2: build the tuple tree bottom-up. Each raw node is represented by a
  // top tuple node carrying *some* ordering of its bag.
  TupleNormalizedTd out(width);
  std::vector<TdNodeId> tops(padded.NumNodes(), kNoTdNode);
  std::vector<std::vector<ElementId>> top_tuple(padded.NumNodes());

  // Moves `e` to position 0 of `tuple` (returns new tuple, order of the rest
  // preserved).
  auto to_front = [](const std::vector<ElementId>& tuple, ElementId e) {
    std::vector<ElementId> out_tuple{e};
    for (ElementId x : tuple) {
      if (x != e) out_tuple.push_back(x);
    }
    return out_tuple;
  };

  for (TdNodeId raw : padded.PostOrder()) {
    const std::vector<ElementId>& bag = padded.Bag(raw);
    const auto& children = padded.node(raw).children;
    if (children.empty()) {
      TdNodeId leaf = out.AddNode(
          TupleNode{TupleNodeKind::kLeaf, bag, kNoTdNode, {}});
      tops[static_cast<size_t>(raw)] = leaf;
      top_tuple[static_cast<size_t>(raw)] = bag;  // sorted order
      continue;
    }
    // Lift every child to this node's bag via permutation+replacement chains.
    std::vector<TdNodeId> lifted;
    std::vector<std::vector<ElementId>> lifted_tuples;
    for (TdNodeId child : children) {
      TdNodeId cur = tops[static_cast<size_t>(child)];
      std::vector<ElementId> cur_tuple = top_tuple[static_cast<size_t>(child)];
      std::vector<ElementId> remove = SetMinus(padded.Bag(child), bag);
      std::vector<ElementId> add = SetMinus(bag, padded.Bag(child));
      TREEDL_CHECK(remove.size() == add.size())
          << "padded bags must have equal size";
      for (size_t j = 0; j < remove.size(); ++j) {
        if (cur_tuple.empty() || cur_tuple[0] != remove[j]) {
          cur_tuple = to_front(cur_tuple, remove[j]);
          cur = out.AddNode(TupleNode{TupleNodeKind::kPermutation, cur_tuple,
                                      kNoTdNode, {cur}});
        }
        cur_tuple[0] = add[j];
        cur = out.AddNode(TupleNode{TupleNodeKind::kElementReplacement,
                                    cur_tuple, kNoTdNode, {cur}});
      }
      lifted.push_back(cur);
      lifted_tuples.push_back(cur_tuple);
    }
    if (lifted.size() == 1) {
      tops[static_cast<size_t>(raw)] = lifted[0];
      top_tuple[static_cast<size_t>(raw)] = lifted_tuples[0];
      continue;
    }
    // Branch: children must carry the branch node's own tuple. Normalize all
    // lifted tops to the sorted order with one permutation node each.
    std::vector<ElementId> canonical = bag;  // sorted already
    TdNodeId acc = kNoTdNode;
    for (size_t i = 0; i < lifted.size(); ++i) {
      TdNodeId topi = lifted[i];
      if (lifted_tuples[i] != canonical) {
        topi = out.AddNode(TupleNode{TupleNodeKind::kPermutation, canonical,
                                     kNoTdNode, {topi}});
      }
      if (acc == kNoTdNode) {
        acc = topi;
      } else {
        // Both children of a branch must have the same tuple as the branch
        // itself; `acc` may be a permutation/replacement node with tuple
        // `canonical` already.
        if (out.node(acc).bag != canonical) {
          acc = out.AddNode(TupleNode{TupleNodeKind::kPermutation, canonical,
                                      kNoTdNode, {acc}});
        }
        acc = out.AddNode(TupleNode{TupleNodeKind::kBranch, canonical,
                                    kNoTdNode, {acc, topi}});
      }
    }
    tops[static_cast<size_t>(raw)] = acc;
    top_tuple[static_cast<size_t>(raw)] = canonical;
  }
  out.SetRoot(tops[static_cast<size_t>(padded.root())]);
  TREEDL_RETURN_IF_ERROR(ValidateTupleNormalized(out));
  return out;
}

Status ValidateTupleNormalized(const TupleNormalizedTd& ntd) {
  if (ntd.NumNodes() == 0 || ntd.root() == kNoTdNode) {
    return Status::InvalidArgument("tuple TD is empty or rootless");
  }
  size_t full = static_cast<size_t>(ntd.width()) + 1;
  for (TdNodeId id : ntd.PreOrder()) {
    const TupleNode& n = ntd.node(id);
    if (n.bag.size() != full) {
      return Status::InvalidArgument("tuple bag has wrong size");
    }
    std::vector<ElementId> sorted = n.bag;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::InvalidArgument("tuple bag has repeated elements");
    }
    switch (n.kind) {
      case TupleNodeKind::kLeaf:
        if (!n.children.empty()) {
          return Status::InvalidArgument("tuple leaf with children");
        }
        break;
      case TupleNodeKind::kPermutation: {
        if (n.children.size() != 1) {
          return Status::InvalidArgument("permutation node needs one child");
        }
        std::vector<ElementId> child_sorted = ntd.node(n.children[0]).bag;
        std::sort(child_sorted.begin(), child_sorted.end());
        if (child_sorted != sorted) {
          return Status::InvalidArgument(
              "permutation node bag is not a permutation of child bag");
        }
        break;
      }
      case TupleNodeKind::kElementReplacement: {
        if (n.children.size() != 1) {
          return Status::InvalidArgument("replacement node needs one child");
        }
        const auto& child_bag = ntd.node(n.children[0]).bag;
        if (child_bag.size() != n.bag.size()) {
          return Status::InvalidArgument("replacement bag size mismatch");
        }
        for (size_t i = 1; i < n.bag.size(); ++i) {
          if (n.bag[i] != child_bag[i]) {
            return Status::InvalidArgument(
                "replacement node must only change position 0");
          }
        }
        if (n.bag[0] == child_bag[0]) {
          return Status::InvalidArgument(
              "replacement node must change position 0");
        }
        break;
      }
      case TupleNodeKind::kBranch:
        if (n.children.size() != 2 || ntd.node(n.children[0]).bag != n.bag ||
            ntd.node(n.children[1]).bag != n.bag) {
          return Status::InvalidArgument(
              "branch node children must carry identical tuples");
        }
        break;
    }
  }
  return Status::OK();
}

}  // namespace treedl
