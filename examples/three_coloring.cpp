// Graph DPs through the Engine session API: 3-Colorability (§5.1) with
// witness extraction and counting, plus vertex cover, independent set, and
// dominating set — all five queries on ONE cached decomposition per graph.
#include <iostream>

#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace {

void Report(const std::string& name, const treedl::Graph& g) {
  using namespace treedl;
  Engine engine = Engine::FromGraph(g);
  auto width = engine.Width();
  if (!width.ok()) {
    std::cerr << name << ": " << width.status() << "\n";
    return;
  }
  auto result = engine.Solve(Engine::Problem::kThreeColor);
  if (!result.ok()) {
    std::cerr << name << ": " << result.status() << "\n";
    return;
  }
  std::cout << name << ": n=" << g.NumVertices() << " m=" << g.NumEdges()
            << " width=" << *width << " -> "
            << (result->feasible ? "3-colorable" : "NOT 3-colorable");
  if (result->witness.has_value()) {
    std::cout << "  coloring:";
    for (size_t v = 0; v < result->witness->size(); ++v) {
      std::cout << " " << "rgb"[static_cast<size_t>((*result->witness)[v])];
    }
  }
  std::cout << "\n";
  if (result->feasible) {
    auto count = engine.Solve(Engine::Problem::kThreeColorCount);
    if (count.ok()) std::cout << "  #3-colorings = " << count->count << "\n";
  }
  auto vc = engine.Solve(Engine::Problem::kVertexCover);
  auto is = engine.Solve(Engine::Problem::kIndependentSet);
  auto ds = engine.Solve(Engine::Problem::kDominatingSet);
  if (vc.ok() && is.ok() && ds.ok()) {
    std::cout << "  min vertex cover = " << vc->optimum
              << ", max independent set = " << is->optimum
              << ", min dominating set = " << ds->optimum << "\n";
  }
  std::cout << "  session: " << engine.CumulativeStats().td_builds
            << " decomposition build(s) served "
            << "all queries\n";
}

}  // namespace

int main() {
  using namespace treedl;
  Report("C5 (odd cycle)", CycleGraph(5));
  Report("K4 (clique)", CompleteGraph(4));
  Report("Petersen", PetersenGraph());
  Report("5x5 grid", GridGraph(5, 5));
  Rng rng(2026);
  Report("random partial 3-tree (n=40)", RandomPartialKTree(40, 3, 0.8, &rng));
  return 0;
}
