// treedl_server: the protocol driver over treedl::server::Server.
//
// Reads one request per line from stdin (interactive use) or from a
// replayable script file, writes replies to stdout. No sockets: transcripts
// are deterministic, so the same binary serves interactive exploration, the
// CI smoke test (scripts/server_smoke.txt) and ad-hoc benchmarking.
//
//   ./treedl_server                          # interactive, from stdin
//   ./treedl_server --script requests.txt    # replay a request script
//
// Flags:
//   --script FILE       read requests from FILE instead of stdin
//   --max-sessions N    session-pool capacity (default 8)
//   --budget BYTES      shared table_memory_budget in bytes (default 0 = off)
//   --session-dir DIR   enable SAVE/OPEN + warm start from DIR
//   --threads N         shared worker pool size (default 1 = sequential)
//   --no-stats          omit per-request RunStats echoes (byte-stable replies)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "server/server.hpp"

int main(int argc, char** argv) {
  treedl::server::ServerOptions options;
  const char* script_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--script") == 0 && i + 1 < argc) {
      script_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-sessions") == 0 && i + 1 < argc) {
      options.max_sessions = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      options.table_memory_budget = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--session-dir") == 0 && i + 1 < argc) {
      options.session_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.num_threads = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--no-stats") == 0) {
      options.echo_stats = false;
    } else {
      std::fprintf(stderr,
                   "usage: treedl_server [--script FILE] [--max-sessions N] "
                   "[--budget BYTES] [--session-dir DIR] [--threads N] "
                   "[--no-stats]\n");
      return 2;
    }
  }

  treedl::server::Server server(options);
  if (script_path != nullptr) {
    std::ifstream script(script_path);
    if (!script) {
      std::fprintf(stderr, "treedl_server: cannot open script '%s'\n",
                   script_path);
      return 2;
    }
    server.Serve(script, std::cout);
  } else {
    server.Serve(std::cin, std::cout);
  }
  return 0;
}
