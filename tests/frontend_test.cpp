// Concurrent serving front-end: reply re-sequencing, transcript determinism
// across thread counts, barrier semantics, and deterministic queue-full
// shedding. Runs under TSan in CI.
#include "server/frontend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/sequencer.hpp"
#include "server/server.hpp"

namespace treedl::server {
namespace {

TEST(SequencerTest, EmitsInAllocationOrderUnderConcurrentPushes) {
  std::vector<std::string> emitted;
  Sequencer sequencer(
      [&emitted](std::string&& payload) { emitted.push_back(payload); });

  constexpr size_t kItems = 256;
  std::vector<uint64_t> seqs;
  seqs.reserve(kItems);
  for (size_t i = 0; i < kItems; ++i) seqs.push_back(sequencer.Allocate());

  // Four pushers, each owning every 4th number, pushing newest-first so the
  // sequencer has to buffer aggressively.
  std::vector<std::thread> pushers;
  for (size_t t = 0; t < 4; ++t) {
    pushers.emplace_back([&sequencer, &seqs, t] {
      for (size_t i = kItems; i-- > 0;) {
        if (i % 4 != t) continue;
        sequencer.Push(seqs[i], "item" + std::to_string(i));
      }
    });
  }
  for (std::thread& pusher : pushers) pusher.join();

  ASSERT_EQ(emitted.size(), kItems);
  EXPECT_EQ(sequencer.NumEmitted(), kItems);
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(emitted[i], "item" + std::to_string(i)) << i;
  }
}

/// A multi-tenant script that exercises every determinism hazard: two
/// tenants sharing one pooled session, a third with its own, per-request
/// cache echoes, errors, a mid-script STATS barrier, and re-acquire after
/// the pool state settled.
std::string ContendedScript() {
  return
      "LOAD a SIG e/2 FACTS e(v0, v1). e(v1, v2). e(v2, v3).\n"
      "LOAD b SIG e/2 FACTS e(v0, v1). e(v1, v2). e(v2, v3).\n"  // same fp as a
      "LOAD c SIG e/2 FACTS e(x, y). e(y, z). e(z, x).\n"
      "SOLVE a VC\n"
      "SOLVE b IS\n"
      "SOLVE c #3COL\n"
      "QUERY a path(X, Y) :- e(X, Y). path(X, Z) :- path(X, Y), e(Y, Z).\n"
      "MSO c ex1 x: e(x, x)\n"
      "SOLVEALL b\n"
      "SOLVE missing VC\n"            // E_NO_TENANT, between compute bursts
      "THIS IS NOT A REQUEST\n"       // parse error at a fixed position
      "STATS\n"                       // barrier: counters must be quiescent
      "SOLVE a DS\n"
      "SOLVE c VC\n"
      "QUERY b same(X, X) :- e(X, Y).\n"
      "STATS\n"
      "QUIT\n";
}

std::string RunSingleThreaded(const std::string& script) {
  ServerOptions options;  // echo_stats on: cache echoes must match too
  Server server(options);
  std::istringstream in(script);
  std::ostringstream out;
  server.Serve(in, out);
  return out.str();
}

std::string RunFrontend(const std::string& script, size_t threads,
                        size_t queue_capacity = 64) {
  ServerOptions options;
  Server server(options);
  FrontendOptions frontend_options;
  frontend_options.num_threads = threads;
  frontend_options.queue_capacity = queue_capacity;
  Frontend frontend(&server, frontend_options);
  std::istringstream in(script);
  std::ostringstream out;
  frontend.Serve(in, out);
  return out.str();
}

TEST(FrontendTest, TranscriptIsByteIdenticalAtEveryThreadCount) {
  const std::string script = ContendedScript();
  const std::string reference = RunSingleThreaded(script);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(RunFrontend(script, 1), reference);
  EXPECT_EQ(RunFrontend(script, 2), reference);
  EXPECT_EQ(RunFrontend(script, 8), reference);
  // A tiny queue forces the blocking back-pressure path; same bytes.
  EXPECT_EQ(RunFrontend(script, 8, /*queue_capacity=*/1), reference);
}

TEST(FrontendTest, RepeatedRunsAgreeUnderContention) {
  const std::string script = ContendedScript();
  const std::string reference = RunSingleThreaded(script);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(RunFrontend(script, 8), reference) << "round " << round;
  }
}

TEST(FrontendTest, CountsBarriersAndDispatchedCompute) {
  ServerOptions options;
  Server server(options);
  FrontendOptions frontend_options;
  frontend_options.num_threads = 4;
  Frontend frontend(&server, frontend_options);
  std::istringstream in(ContendedScript());
  std::ostringstream out;
  size_t handled = frontend.Serve(in, out);
  EXPECT_EQ(handled, 17u);  // every non-comment line of ContendedScript

  FrontendCounters counters = frontend.counters();
  // 9 compute requests execute on workers; SOLVE missing fails in the
  // sequential stage and THIS IS NOT A REQUEST never reaches a queue.
  EXPECT_EQ(counters.dispatched_compute, 9u);
  // 3 LOADs + 2 STATS + QUIT drain; the first compute on each of the two
  // distinct sessions after a LOAD... sessions stay resident (LOAD itself
  // acquired them), so no extra non-resident barriers are needed.
  EXPECT_EQ(counters.barriers, 6u);
  EXPECT_EQ(counters.queue_full_rejections, 0u);
  EXPECT_GE(counters.max_queue_depth, 1u);
}

TEST(FrontendTest, HeldWorkersMakeQueueFullSheddingDeterministic) {
  ServerOptions options;
  options.echo_stats = false;
  Server server(options);
  FrontendOptions frontend_options;
  frontend_options.num_threads = 2;
  frontend_options.queue_capacity = 2;
  frontend_options.reject_when_full = true;
  frontend_options.hold_workers = true;
  Frontend frontend(&server, frontend_options);

  // One session, 5 identical compute requests, capacity 2: with the workers
  // gated, requests 3..5 MUST be shed — no timing involved.
  std::string script =
      "LOAD t SIG e/2 FACTS e(a, b). e(b, c).\n"
      "SOLVE t VC\n"
      "SOLVE t VC\n"
      "SOLVE t VC\n"
      "SOLVE t VC\n"
      "SOLVE t VC\n";
  std::istringstream in(script);
  std::ostringstream out;
  std::thread driver([&] { frontend.Serve(in, out); });

  // Dispatch runs ahead of the gated workers; wait until it shed the tail.
  while (frontend.counters().queue_full_rejections < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  frontend.ReleaseWorkers();
  driver.join();

  FrontendCounters counters = frontend.counters();
  EXPECT_EQ(counters.dispatched_compute, 2u);
  EXPECT_EQ(counters.queue_full_rejections, 3u);
  EXPECT_EQ(counters.max_queue_depth, 2u);

  // Replies land at their request's position: 2 OKs then 3 E_ADMISSION.
  std::istringstream replies(out.str());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(replies, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0].rfind("OK LOAD", 0), 0u);
  EXPECT_EQ(lines[1].rfind("OK SOLVE", 0), 0u);
  EXPECT_EQ(lines[2].rfind("OK SOLVE", 0), 0u);
  for (size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(lines[i].rfind("ERR E_ADMISSION", 0), 0u) << lines[i];
    EXPECT_NE(lines[i].find("queue"), std::string::npos) << lines[i];
  }
  EXPECT_EQ(server.stats().requests, 6u);
}

TEST(FrontendTest, ServesMultipleScriptsBackToBack) {
  ServerOptions options;
  Server server(options);
  FrontendOptions frontend_options;
  frontend_options.num_threads = 3;
  Frontend frontend(&server, frontend_options);

  std::istringstream first(
      "LOAD t SIG e/2 FACTS e(a, b). e(b, c).\n"
      "SOLVE t VC\n");
  std::ostringstream out1;
  EXPECT_EQ(frontend.Serve(first, out1), 2u);

  std::istringstream second("SOLVE t IS\nSTATS\n");
  std::ostringstream out2;
  EXPECT_EQ(frontend.Serve(second, out2), 2u);
  EXPECT_NE(out2.str().find("OK SOLVE"), std::string::npos);
  EXPECT_NE(out2.str().find("OK STATS"), std::string::npos);
  EXPECT_EQ(server.stats().requests, 4u);
}

}  // namespace
}  // namespace treedl::server
