// Scaling of the bag-sharded parallel tree DP: one partial k-tree instance
// large enough to shard, the same Solve queries at num_threads = 1/2/4/...,
// wall-clock and speedup per thread count. The num_threads = 1 row is the
// sequential driver (no pool, no sharding pass); every other row runs
// RunTreeDpSharded on a work-stealing pool. Table caches are warmed before
// timing so the rows compare pure DP traversals, not decomposition builds.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace treedl {
namespace {

constexpr size_t kVertices = 3000;
constexpr int kTreewidth = 6;
constexpr double kKeepProbability = 0.55;
constexpr uint64_t kSeed = 20260727;
constexpr int kRepeats = 3;

double TimeSolves(Engine& engine, RunStats* last_run) {
  Timer timer;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    auto vc = engine.Solve(Engine::Problem::kVertexCover, last_run);
    TREEDL_CHECK(vc.ok()) << vc.status();
    auto count = engine.Solve(Engine::Problem::kThreeColorCount);
    TREEDL_CHECK(count.ok()) << count.status();
  }
  return timer.ElapsedMillis();
}

void RunParallelDpBench() {
  Rng rng(kSeed);
  Graph graph = RandomPartialKTree(kVertices, kTreewidth, kKeepProbability,
                                   &rng);
  std::printf("parallel tree DP: partial %d-tree, n=%zu, keep=%.2f "
              "(%d x {VC, #3COL} per row)\n",
              kTreewidth, kVertices, kKeepProbability, kRepeats);
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %8s %10s %8s %10s %14s\n", "threads", "shards", "time ms",
              "speedup", "states", "slowest shard");

  double baseline = 0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    EngineOptions options;
    options.num_threads = threads;
    options.extract_witness = false;
    Engine engine = Engine::FromGraph(graph, options);
    // Warm the session caches (decomposition, normal form, sharding).
    auto warm = engine.Solve(Engine::Problem::kVertexCover);
    TREEDL_CHECK(warm.ok()) << warm.status();

    RunStats run;
    double ms = TimeSolves(engine, &run);
    if (threads == 1) baseline = ms;
    double slowest = 0;
    for (double shard_ms : run.dp_shard_millis) {
      slowest = std::max(slowest, shard_ms);
    }
    std::printf("%8zu %8zu %10.1f %7.2fx %10zu %12.1fms\n", threads,
                run.dp_shards, ms, baseline / ms, run.dp_states, slowest);
  }
  std::printf("\n(speedup needs real cores: on a single-hardware-thread "
              "machine every row\n degenerates to time-sliced execution and "
              "the ratio stays ~1x)\n");
}

}  // namespace
}  // namespace treedl

int main() {
  treedl::RunParallelDpBench();
  return 0;
}
