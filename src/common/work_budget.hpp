// WorkBudget: a cooperative cancellation token with two deterministic limits.
//
// The paper's cost model makes work predictable — DP cost is ~3^|bag| per
// node, fixpoint cost is round-bounded — so a request limit can be expressed
// in *logical work units* (DP nodes processed per pass, fixpoint rule tasks
// per round) instead of wall-clock. Logical units are the point: the total
// number of units a computation attempts is a pure function of the input,
// never of the thread count or schedule, so "abort after N units" yields the
// SAME abort decision — and therefore the same protocol reply — in a
// sequential run and in any parallel run.
//
// Two independent limits share one sticky abort flag:
//
//   deadline_units   every worker claims one unit per quantum of work via
//                    ConsumeUnit(); the claim whose index reaches the limit
//                    trips the flag. Because every unit is attempted until
//                    the flag trips, "cumulative units > limit" is
//                    schedule-invariant even though WHICH worker trips is
//                    not. DEADLINE 0 means zero allowed units (the first
//                    claim trips), not "disabled".
//
//   table_bytes_limit  a hard ceiling on live DP table bytes, checked after
//                    each table lands (CheckTableBytes). Distinct from
//                    DpExec::table_memory_budget, which only drives dead-
//                    table EVICTION: the hard cap fires even on passes that
//                    retain tables (witness extraction), where eviction is
//                    disabled by design. Peak overshoot is bounded by the
//                    one table that tripped the check (per concurrently
//                    stepping worker).
//
// Aborting is sticky and one-way. Drivers stay infallible: a cancelled chunk
// still runs its scheduling epilogue (dependency countdowns, WaitGroup) and
// simply skips node processing; the CALLER converts Aborted() into a Status
// before touching any finalizer that assumes complete tables. AbortStatus()
// messages mention only schedule-invariant values (the limits), never
// bytes-at-trip or unit counts, so transcripts diff byte-for-byte.
#ifndef TREEDL_COMMON_WORK_BUDGET_HPP_
#define TREEDL_COMMON_WORK_BUDGET_HPP_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace treedl {

class WorkBudget {
 public:
  WorkBudget() = default;
  WorkBudget(const WorkBudget&) = delete;
  WorkBudget& operator=(const WorkBudget&) = delete;

  /// Arms the deadline: at most `units` work units may run. 0 is a real
  /// limit (the very first unit aborts).
  void SetDeadline(uint64_t units) {
    has_deadline_ = true;
    deadline_units_ = units;
  }

  /// Arms the hard live-table ceiling (0 leaves it disarmed).
  void SetTableBytesLimit(size_t bytes) { table_bytes_limit_ = bytes; }

  bool HasDeadline() const { return has_deadline_; }
  uint64_t DeadlineUnits() const { return deadline_units_; }
  size_t TableBytesLimit() const { return table_bytes_limit_; }

  /// Claims one work unit. Returns false when the budget is exhausted (this
  /// claim or an earlier one tripped a limit) — the caller skips the unit's
  /// work but still runs its scheduling epilogue.
  bool ConsumeUnit() {
    if (state_.load(std::memory_order_relaxed) != kOk) return false;
    if (!has_deadline_) return true;
    uint64_t index = units_.fetch_add(1, std::memory_order_relaxed);
    if (index < deadline_units_) return true;
    Trip(kDeadline);
    return false;
  }

  /// Hard-cap check after a table landed: `live_bytes` is the tracker's
  /// current total. Trips the memory abort when the ceiling is armed and
  /// exceeded. Returns false once aborted (by any limit).
  bool CheckTableBytes(size_t live_bytes) {
    if (state_.load(std::memory_order_relaxed) != kOk) return false;
    if (table_bytes_limit_ > 0 && live_bytes > table_bytes_limit_) {
      Trip(kMemory);
      return false;
    }
    return true;
  }

  bool Aborted() const {
    return state_.load(std::memory_order_acquire) != kOk;
  }

  /// The Status a caller surfaces instead of a partial result. The message
  /// carries only the configured limits — never live counters — so it is
  /// byte-identical across schedules.
  Status AbortStatus() const {
    switch (state_.load(std::memory_order_acquire)) {
      case kDeadline:
        return Status::DeadlineExceeded(
            "deadline of " + std::to_string(deadline_units_) +
            " work units exceeded");
      case kMemory:
        return Status::ResourceExhausted(
            "live DP tables exceed the table_memory_budget of " +
            std::to_string(table_bytes_limit_) + "B");
      default:
        return Status::OK();
    }
  }

  /// Re-arms the budget for another request (single-threaded context only —
  /// servers build one WorkBudget per request instead).
  void Reset() {
    state_.store(kOk, std::memory_order_relaxed);
    units_.store(0, std::memory_order_relaxed);
  }

 private:
  enum AbortState : int { kOk = 0, kDeadline = 1, kMemory = 2 };

  void Trip(AbortState why) {
    int expected = kOk;
    state_.compare_exchange_strong(expected, why, std::memory_order_acq_rel);
  }

  bool has_deadline_ = false;
  uint64_t deadline_units_ = 0;
  size_t table_bytes_limit_ = 0;
  std::atomic<uint64_t> units_{0};
  std::atomic<int> state_{kOk};
};

}  // namespace treedl

#endif  // TREEDL_COMMON_WORK_BUDGET_HPP_
