// Bounds-checked little-endian binary encoding.
//
// Shared by the per-layer artifact serializers (structure/structure_io,
// td/td_io, datalog/tau_td) and the engine's session files
// (engine/session_io, format spec in docs/SESSION_FORMAT.md). The writer
// appends to an in-memory buffer; the reader consumes a string_view and
// returns a clean Status on any truncation or oversized length prefix, so a
// corrupted file can never crash the process or trigger a pathological
// allocation.
#ifndef TREEDL_COMMON_BINARY_IO_HPP_
#define TREEDL_COMMON_BINARY_IO_HPP_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace treedl {

class BinaryWriter {
 public:
  void U8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }

  /// Length-prefixed byte string.
  void Str(std::string_view s) {
    U64(s.size());
    buffer_.append(s.data(), s.size());
  }

  /// Length-prefixed vector of 32-bit values (ElementId, TdNodeId, ...).
  template <typename T>
  void Vec32(const std::vector<T>& values) {
    static_assert(sizeof(T) == 4);
    U64(values.size());
    for (const T& v : values) U32(static_cast<uint32_t>(v));
  }

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status U8(uint8_t* out) {
    if (Remaining() < 1) return Truncated("u8");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status U32(uint32_t* out) {
    if (Remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status U64(uint64_t* out) {
    if (Remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  Status I32(int32_t* out) {
    uint32_t v = 0;
    TREEDL_RETURN_IF_ERROR(U32(&v));
    *out = static_cast<int32_t>(v);
    return Status::OK();
  }

  /// Reads a length prefix that promises `min_element_bytes` per element and
  /// rejects any count the remaining input cannot possibly hold — the guard
  /// that keeps corrupted prefixes from driving huge allocations.
  Status Length(size_t* out, size_t min_element_bytes) {
    uint64_t n = 0;
    TREEDL_RETURN_IF_ERROR(U64(&n));
    if (min_element_bytes == 0) min_element_bytes = 1;
    if (n > Remaining() / min_element_bytes) {
      return Status::ParseError("binary input: length prefix " +
                                std::to_string(n) + " exceeds remaining " +
                                std::to_string(Remaining()) + " bytes");
    }
    *out = static_cast<size_t>(n);
    return Status::OK();
  }

  Status Str(std::string* out) {
    size_t n = 0;
    TREEDL_RETURN_IF_ERROR(Length(&n, 1));
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status Vec32(std::vector<T>* out) {
    static_assert(sizeof(T) == 4);
    size_t n = 0;
    TREEDL_RETURN_IF_ERROR(Length(&n, 4));
    out->clear();
    out->reserve(n);
    for (size_t i = 0; i < n; ++i) {
      uint32_t v = 0;
      TREEDL_RETURN_IF_ERROR(U32(&v));
      out->push_back(static_cast<T>(v));
    }
    return Status::OK();
  }

  /// Sub-reader over the next `n` bytes (for length-delimited sections).
  Status Slice(size_t n, std::string_view* out) {
    if (Remaining() < n) return Truncated("slice");
    *out = data_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::ParseError(std::string("binary input truncated reading ") +
                              what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit over a byte string. Stable across platforms and processes —
/// used for session-file fingerprints (docs/SESSION_FORMAT.md).
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace treedl

#endif  // TREEDL_COMMON_BINARY_IO_HPP_
