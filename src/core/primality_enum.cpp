#include "core/primality_enum.hpp"

#include <unordered_set>

#include "common/logging.hpp"
#include "core/primality.hpp"
#include "core/primality_internal.hpp"
#include "engine/passes.hpp"
#include "engine/pipeline.hpp"

namespace treedl::core {

namespace {

using internal::PrimalityContext;
using internal::PrimJoinKey;
using internal::PrimState;

using StateSet = std::unordered_set<PrimState, MemberHash<PrimState>>;

// Bottom-up solve() tables, as in primality.cpp but kept for every node.
std::vector<StateSet> BottomUpTables(const PrimalityContext& context,
                                     const NormalizedTreeDecomposition& ntd,
                                     DpStats* stats) {
  std::vector<StateSet> table(ntd.NumNodes());
  for (TdNodeId id : ntd.PostOrder()) {
    const NormNode& node = ntd.node(id);
    StateSet& states = table[static_cast<size_t>(id)];
    auto emit = [&](PrimState s) { states.insert(std::move(s)); };
    switch (node.kind) {
      case NormNodeKind::kLeaf:
        context.LeafStates(node.bag, emit);
        break;
      case NormNodeKind::kIntroduce:
        for (const PrimState& s : table[static_cast<size_t>(node.children[0])]) {
          if (context.IsAttr(node.element)) {
            context.IntroduceAttr(node.bag, node.element, s, emit);
          } else {
            context.IntroduceFd(node.bag, node.element, s, emit);
          }
        }
        break;
      case NormNodeKind::kForget:
        for (const PrimState& s : table[static_cast<size_t>(node.children[0])]) {
          if (context.IsAttr(node.element)) {
            context.ForgetAttr(node.bag, node.element, s, emit);
          } else {
            context.ForgetFd(node.bag, node.element, s, emit);
          }
        }
        break;
      case NormNodeKind::kCopy:
        states = table[static_cast<size_t>(node.children[0])];
        break;
      case NormNodeKind::kBranch: {
        const StateSet& left = table[static_cast<size_t>(node.children[0])];
        const StateSet& right = table[static_cast<size_t>(node.children[1])];
        std::unordered_map<PrimJoinKey, std::vector<const PrimState*>,
                           MemberHash<PrimJoinKey>>
            buckets;
        for (const PrimState& s : right) buckets[context.KeyOf(s)].push_back(&s);
        for (const PrimState& s : left) {
          auto it = buckets.find(context.KeyOf(s));
          if (it == buckets.end()) continue;
          for (const PrimState* r : it->second) context.Join(s, *r, emit);
        }
        break;
      }
    }
    if (stats != nullptr) {
      stats->total_states += states.size();
      stats->max_states_per_node =
          std::max(stats->max_states_per_node, states.size());
    }
  }
  return table;
}

// Top-down solve↓() tables (§5.3): the state set of a node characterizes the
// *envelope* T̄_s. Transitions invert the parent's kind; at a branch the
// sibling's bottom-up table joins in.
std::vector<StateSet> TopDownTables(const PrimalityContext& context,
                                    const NormalizedTreeDecomposition& ntd,
                                    const std::vector<StateSet>& up,
                                    DpStats* stats) {
  std::vector<StateSet> down(ntd.NumNodes());
  // Base: the envelope of the root is the root node alone — the leaf rule
  // applied to the root's bag.
  {
    StateSet& states = down[static_cast<size_t>(ntd.root())];
    context.LeafStates(ntd.Bag(ntd.root()),
                       [&](PrimState s) { states.insert(std::move(s)); });
  }
  for (TdNodeId id : ntd.PreOrder()) {
    const NormNode& parent = ntd.node(id);
    for (size_t child_index = 0; child_index < parent.children.size();
         ++child_index) {
      TdNodeId child = parent.children[child_index];
      StateSet& states = down[static_cast<size_t>(child)];
      auto emit = [&](PrimState s) { states.insert(std::move(s)); };
      switch (parent.kind) {
        case NormNodeKind::kLeaf:
          TREEDL_CHECK(false) << "leaf with children";
          break;
        case NormNodeKind::kCopy:
          states = down[static_cast<size_t>(id)];
          break;
        case NormNodeKind::kIntroduce:
          // Parent introduced e going up; going down the envelope forgets it
          // — e's occurrences all lie inside the envelope of the child.
          for (const PrimState& s : down[static_cast<size_t>(id)]) {
            if (context.IsAttr(parent.element)) {
              context.ForgetAttr(ntd.Bag(child), parent.element, s, emit);
            } else {
              context.ForgetFd(ntd.Bag(child), parent.element, s, emit);
            }
          }
          break;
        case NormNodeKind::kForget:
          // Parent forgot e going up; going down the envelope introduces it
          // fresh (e occurs only below the child, so only at the child from
          // the envelope's perspective).
          for (const PrimState& s : down[static_cast<size_t>(id)]) {
            if (context.IsAttr(parent.element)) {
              context.IntroduceAttr(ntd.Bag(child), parent.element, s, emit);
            } else {
              context.IntroduceFd(ntd.Bag(child), parent.element, s, emit);
            }
          }
          break;
        case NormNodeKind::kBranch: {
          // T̄_child = T̄_parent ∪ T_sibling: join the parent's envelope
          // states with the sibling's subtree states.
          TdNodeId sibling = parent.children[1 - child_index];
          const StateSet& sib = up[static_cast<size_t>(sibling)];
          std::unordered_map<PrimJoinKey, std::vector<const PrimState*>,
                             MemberHash<PrimJoinKey>>
              buckets;
          for (const PrimState& s : sib) {
            buckets[context.KeyOf(s)].push_back(&s);
          }
          for (const PrimState& s : down[static_cast<size_t>(id)]) {
            auto it = buckets.find(context.KeyOf(s));
            if (it == buckets.end()) continue;
            for (const PrimState* r : it->second) context.Join(s, *r, emit);
          }
          break;
        }
      }
      if (stats != nullptr) {
        stats->total_states += states.size();
        stats->max_states_per_node =
            std::max(stats->max_states_per_node, states.size());
      }
    }
  }
  return down;
}

}  // namespace

namespace internal {

std::vector<bool> EnumeratePrimesPrepared(const PrimalityContext& context,
                                          const SchemaEncoding& encoding,
                                          int num_attributes,
                                          const NormalizedTreeDecomposition& ntd,
                                          RunStats* stats) {
  DpStats dp;
  std::vector<StateSet> up = BottomUpTables(context, ntd, &dp);
  std::vector<StateSet> down = TopDownTables(context, ntd, up, &dp);
  if (stats != nullptr) {
    stats->dp_states += dp.total_states;
    stats->dp_max_states_per_node =
        std::max(stats->dp_max_states_per_node, dp.max_states_per_node);
  }

  // prime(a) is read off at the leaves (every attribute occurs in some leaf
  // bag by the ensure_leaf_coverage normalization option). Note that
  // solve↓ at a leaf characterizes the envelope of the leaf — the *entire*
  // structure — exactly like solve at the root of a re-rooted decomposition.
  std::vector<bool> primes(static_cast<size_t>(num_attributes), false);
  for (TdNodeId id : ntd.PreOrder()) {
    if (ntd.node(id).kind != NormNodeKind::kLeaf) continue;
    const auto& bag = ntd.Bag(id);
    for (ElementId e : bag) {
      if (!context.IsAttr(e)) continue;
      AttributeId a = encoding.AttrOf(e);
      if (primes[static_cast<size_t>(a)]) continue;
      for (const PrimState& s : down[static_cast<size_t>(id)]) {
        if (context.Accepts(bag, s, e)) {
          primes[static_cast<size_t>(a)] = true;
          break;
        }
      }
    }
  }
  return primes;
}

}  // namespace internal

StatusOr<std::vector<bool>> EnumeratePrimes(const Schema& schema,
                                            const SchemaEncoding& encoding,
                                            const TreeDecomposition& td,
                                            RunStats* stats) {
  if (stats != nullptr) *stats = RunStats{};
  PrimalityContext context(schema, encoding);
  engine::PipelineState state;
  state.structure = &encoding.structure;
  state.td = td;
  state.normalize_options =
      internal::PrimalityNormalizeOptions(encoding, /*for_enumeration=*/true);
  engine::PassPipeline pipeline;
  pipeline.Emplace<engine::ValidateStructurePass>()
      .Emplace<engine::RhsClosurePass>(&encoding, &context)
      .Emplace<engine::NormalizePass>();
  TREEDL_RETURN_IF_ERROR(pipeline.Run(state, stats));
  if (stats != nullptr) ++stats->normalize_builds;

  return internal::EnumeratePrimesPrepared(
      context, encoding, schema.NumAttributes(), *state.normalized, stats);
}

StatusOr<std::vector<bool>> EnumeratePrimes(const Schema& schema,
                                            const SchemaEncoding& encoding,
                                            const TreeDecomposition& td,
                                            DpStats* stats) {
  RunStats run;
  auto result = EnumeratePrimes(schema, encoding, td, &run);
  if (stats != nullptr) {
    stats->total_states = run.dp_states;
    stats->max_states_per_node = run.dp_max_states_per_node;
  }
  return result;
}

StatusOr<std::vector<bool>> EnumeratePrimesQuadratic(
    const Schema& schema, const SchemaEncoding& encoding,
    const TreeDecomposition& td) {
  std::vector<bool> primes(static_cast<size_t>(schema.NumAttributes()), false);
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    TREEDL_ASSIGN_OR_RETURN(bool prime,
                            IsPrimeViaTd(schema, encoding, td, a));
    primes[static_cast<size_t>(a)] = prime;
  }
  return primes;
}

}  // namespace treedl::core
