#include "graph/gaifman.hpp"

#include "common/logging.hpp"

namespace treedl {

Graph GaifmanGraph(const Structure& structure) {
  Graph g(structure.NumElements());
  for (const Fact& fact : structure.AllFacts()) {
    for (size_t i = 0; i < fact.args.size(); ++i) {
      for (size_t j = i + 1; j < fact.args.size(); ++j) {
        g.AddEdge(fact.args[i], fact.args[j]);
      }
    }
  }
  return g;
}

Structure GraphToStructure(const Graph& graph) {
  Structure s(Signature::GraphSignature());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    s.AddElement("v" + std::to_string(v));
  }
  PredicateId e = s.signature().PredicateIdOf("e").value();
  for (auto [u, v] : graph.Edges()) {
    Status st = s.AddFact(e, {u, v});
    TREEDL_CHECK(st.ok()) << st.ToString();
    st = s.AddFact(e, {v, u});
    TREEDL_CHECK(st.ok()) << st.ToString();
  }
  return s;
}

StatusOr<Graph> StructureToGraph(const Structure& structure) {
  TREEDL_ASSIGN_OR_RETURN(PredicateId e,
                          structure.signature().PredicateIdOf("e"));
  if (structure.signature().arity(e) != 2) {
    return Status::InvalidArgument("predicate e must be binary");
  }
  Graph g(structure.NumElements());
  for (const Tuple& t : structure.Relation(e)) {
    g.AddEdge(t[0], t[1]);
  }
  return g;
}

}  // namespace treedl
