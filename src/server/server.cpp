#include "server/server.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "datalog/analysis.hpp"
#include "datalog/parser.hpp"
#include "mso/parser.hpp"
#include "structure/structure_io.hpp"

namespace treedl::server {

namespace {

std::string HexFingerprint(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buffer);
}

std::string KeyValue(std::string_view key, size_t value) {
  std::string out(key);
  out += '=';
  out += std::to_string(value);
  return out;
}

const char* PoolLabel(const SessionPool::Lease& lease) {
  if (lease.hit) return "hit";
  return lease.warm_loaded ? "warm" : "cold";
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  size_t threads = options_.num_threads == 0 ? ThreadPool::DefaultNumThreads()
                                             : options_.num_threads;
  EngineOptions engine_options = options_.engine_options;
  if (threads > 1) {
    shared_pool_ = std::make_unique<ThreadPool>(threads);
    engine_options.shared_pool = shared_pool_.get();
  } else {
    engine_options.num_threads = 1;
  }
  SessionPoolOptions pool_options;
  pool_options.max_sessions = options_.max_sessions;
  pool_options.table_memory_budget = options_.table_memory_budget;
  pool_options.session_dir = options_.session_dir;
  pool_options.engine_options = engine_options;
  pool_ = std::make_unique<SessionPool>(std::move(pool_options));
}

Server::~Server() = default;

bool Server::HandleLine(std::string_view line, std::string* out) {
  StatusOr<std::optional<Request>> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    ++stats_.requests;
    EmitError(ErrorCodeFor(parsed.status()), parsed.status().message(), out);
    return true;
  }
  if (!parsed.value().has_value()) return true;  // comment / blank line
  ++stats_.requests;
  const Request& request = *parsed.value();
  if (std::holds_alternative<QuitRequest>(request)) {
    EmitOk("QUIT", "", out);
    return false;
  }
  std::visit(
      [&](const auto& typed) {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, LoadRequest>) {
          HandleLoad(typed, out);
        } else if constexpr (std::is_same_v<T, AssertRequest>) {
          HandleAssert(typed, out);
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          HandleQuery(typed, out);
        } else if constexpr (std::is_same_v<T, SolveRequest>) {
          HandleSolve(typed, out);
        } else if constexpr (std::is_same_v<T, SolveAllRequest>) {
          HandleSolveAll(typed, out);
        } else if constexpr (std::is_same_v<T, MsoRequest>) {
          HandleMso(typed, out);
        } else if constexpr (std::is_same_v<T, SaveRequest>) {
          HandleSave(typed, out);
        } else if constexpr (std::is_same_v<T, OpenRequest>) {
          HandleOpen(typed, out);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          HandleStats(typed, out);
        } else if constexpr (std::is_same_v<T, CloseRequest>) {
          HandleClose(typed, out);
        }
      },
      request);
  return true;
}

size_t Server::Serve(std::istream& in, std::ostream& out) {
  std::string line;
  size_t before = stats_.requests;
  bool keep_going = true;
  while (keep_going && std::getline(in, line)) {
    std::string replies;
    keep_going = HandleLine(line, &replies);
    out << replies;
    out.flush();
  }
  return stats_.requests - before;
}

StatusOr<Server::Tenant*> Server::FindTenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("tenant '" + name + "' has no loaded structure");
  }
  return &it->second;
}

StatusOr<SessionPool::Lease> Server::AcquireFor(const Tenant& tenant) {
  return pool_->Acquire(tenant.structure);
}

std::string Server::FinishRun(uint64_t fingerprint, const RunStats& run) {
  pool_->RefreshCharge(fingerprint);
  if (run.dp_peak_table_bytes > stats_.peak_table_bytes) {
    stats_.peak_table_bytes = run.dp_peak_table_bytes;
  }
  if (!options_.echo_stats) return "";
  std::string echo = " ";
  echo += KeyValue("encode", run.encode_builds);
  echo += ' ';
  echo += KeyValue("td", run.td_builds);
  echo += ' ';
  echo += KeyValue("normalize", run.normalize_builds);
  echo += ' ';
  echo += KeyValue("cache_hits", run.cache_hits);
  return echo;
}

void Server::HandleLoad(const LoadRequest& request, std::string* out) {
  StatusOr<Signature> signature = Signature::Make(request.predicates);
  if (!signature.ok()) {
    EmitError(ErrorCode::kBadArgument, signature.status().message(), out);
    return;
  }
  StatusOr<Structure> structure =
      ParseStructure(signature.value(), request.facts);
  if (!structure.ok()) {
    EmitError(ErrorCode::kParse, structure.status().message(), out);
    return;
  }
  StatusOr<SessionPool::Lease> lease = pool_->Acquire(structure.value());
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  Tenant tenant{std::move(signature).value(), request.facts,
                std::move(structure).value(), lease.value().fingerprint};
  size_t elements = tenant.structure.NumElements();
  size_t facts = tenant.structure.NumFacts();
  tenants_.insert_or_assign(request.tenant, std::move(tenant));
  std::string details = "tenant=" + request.tenant +
                        " fingerprint=" + HexFingerprint(lease.value().fingerprint) +
                        " " + KeyValue("elements", elements) + " " +
                        KeyValue("facts", facts) +
                        " pool=" + PoolLabel(lease.value());
  if (lease.value().warm_loaded) {
    details += " " + KeyValue("loads", lease.value().artifact_loads);
  }
  pool_->RefreshCharge(lease.value().fingerprint);
  EmitOk("LOAD", details, out);
}

void Server::HandleAssert(const AssertRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  Tenant* tenant = found.value();
  std::string combined = tenant->facts_text;
  if (!combined.empty()) combined += '\n';
  combined += request.facts;
  StatusOr<Structure> structure = ParseStructure(tenant->signature, combined);
  if (!structure.ok()) {
    EmitError(ErrorCode::kParse, structure.status().message(), out);
    return;
  }
  tenant->facts_text = std::move(combined);
  tenant->structure = std::move(structure).value();
  tenant->fingerprint = Engine::FingerprintOf(tenant->structure);
  EmitOk("ASSERT",
         "tenant=" + request.tenant + " " +
             KeyValue("facts", tenant->structure.NumFacts()) +
             " fingerprint=" + HexFingerprint(tenant->fingerprint),
         out);
}

void Server::HandleQuery(const QueryRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  Tenant* tenant = found.value();
  StatusOr<datalog::Program> program =
      datalog::ParseProgram(request.program, tenant->signature);
  if (!program.ok()) {
    EmitError(ErrorCode::kParse, program.status().message(), out);
    return;
  }
  StatusOr<SessionPool::Lease> lease = AcquireFor(*tenant);
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  RunStats run;
  StatusOr<Structure> result =
      lease.value().engine->EvaluateDatalog(program.value(), &run);
  if (!result.ok()) {
    EmitError(ErrorCode::kEval, result.status().message(), out);
    return;
  }
  // Render the derived (intensional) facts, predicate-major in signature
  // order, tuples in derivation order — deterministic.
  StatusOr<datalog::ProgramInfo> info =
      datalog::AnalyzeProgram(program.value());
  std::vector<std::string> rows;
  if (info.ok()) {
    const Signature& signature = result.value().signature();
    for (PredicateId p = 0; p < static_cast<PredicateId>(signature.size());
         ++p) {
      if (static_cast<size_t>(p) >= info.value().intensional.size() ||
          !info.value().intensional[static_cast<size_t>(p)]) {
        continue;
      }
      for (const Tuple& tuple : result.value().Relation(p)) {
        std::string row = signature.name(p) + "(";
        for (size_t i = 0; i < tuple.size(); ++i) {
          if (i > 0) row += ", ";
          row += result.value().ElementName(tuple[i]);
        }
        row += ").";
        rows.push_back(std::move(row));
      }
    }
  }
  std::string details = "tenant=" + request.tenant + " " +
                        KeyValue("data", rows.size()) + " " +
                        KeyValue("derived", run.derived_facts) +
                        " pool=" + std::string(PoolLabel(lease.value())) +
                        FinishRun(lease.value().fingerprint, run);
  EmitOk("QUERY", details, out);
  for (const std::string& row : rows) EmitData(row, out);
}

void Server::HandleSolve(const SolveRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  StatusOr<SessionPool::Lease> lease = AcquireFor(*found.value());
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  RunStats run;
  StatusOr<Engine::SolveResult> result =
      lease.value().engine->Solve(request.problem, &run);
  if (!result.ok()) {
    EmitError(ErrorCode::kEval, result.status().message(), out);
    return;
  }
  std::string details = "tenant=" + request.tenant +
                        " problem=" + ProblemName(request.problem);
  switch (request.problem) {
    case Engine::Problem::kThreeColor:
      details += " " + KeyValue("feasible", result.value().feasible ? 1 : 0);
      break;
    case Engine::Problem::kThreeColorCount:
      details +=
          " " + KeyValue("count", static_cast<size_t>(result.value().count));
      break;
    default:
      details += " " + KeyValue("optimum", result.value().optimum);
      break;
  }
  details += " pool=" + std::string(PoolLabel(lease.value())) +
             FinishRun(lease.value().fingerprint, run);
  EmitOk("SOLVE", details, out);
}

void Server::HandleSolveAll(const SolveAllRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  StatusOr<SessionPool::Lease> lease = AcquireFor(*found.value());
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  RunStats run;
  StatusOr<Engine::SolveAllResult> result =
      lease.value().engine->SolveAll(&run);
  if (!result.ok()) {
    EmitError(ErrorCode::kEval, result.status().message(), out);
    return;
  }
  const Engine::SolveAllResult& all = result.value();
  std::string details =
      "tenant=" + request.tenant + " " +
      KeyValue("three_colorable", all.three_colorable ? 1 : 0) + " " +
      KeyValue("colorings", static_cast<size_t>(all.three_colorings)) + " " +
      KeyValue("vc", all.min_vertex_cover) + " " +
      KeyValue("is", all.max_independent_set) + " " +
      KeyValue("ds", all.min_dominating_set) +
      " pool=" + std::string(PoolLabel(lease.value())) +
      FinishRun(lease.value().fingerprint, run);
  EmitOk("SOLVEALL", details, out);
}

void Server::HandleMso(const MsoRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  StatusOr<mso::FormulaPtr> formula = mso::ParseFormula(request.formula);
  if (!formula.ok()) {
    EmitError(ErrorCode::kParse, formula.status().message(), out);
    return;
  }
  StatusOr<SessionPool::Lease> lease = AcquireFor(*found.value());
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  RunStats run;
  StatusOr<bool> holds =
      lease.value().engine->EvaluateMso(formula.value(), &run);
  if (!holds.ok()) {
    EmitError(ErrorCode::kEval, holds.status().message(), out);
    return;
  }
  std::string details = "tenant=" + request.tenant + " " +
                        KeyValue("holds", holds.value() ? 1 : 0) +
                        " pool=" + std::string(PoolLabel(lease.value())) +
                        FinishRun(lease.value().fingerprint, run);
  EmitOk("MSO", details, out);
}

void Server::HandleSave(const SaveRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  Tenant* tenant = found.value();
  // Make sure the session is resident (SAVE after eviction re-admits it).
  StatusOr<SessionPool::Lease> lease = AcquireFor(*tenant);
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  RunStats run;
  Status saved = pool_->Save(lease.value().fingerprint, &run);
  if (!saved.ok()) {
    EmitError(ErrorCode::kIo, saved.message(), out);
    return;
  }
  EmitOk("SAVE",
         "tenant=" + request.tenant + " " +
             KeyValue("artifacts", run.artifact_saves) +
             " fingerprint=" + HexFingerprint(lease.value().fingerprint),
         out);
}

void Server::HandleOpen(const OpenRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  if (options_.session_dir.empty()) {
    EmitError(ErrorCode::kIo,
              "OPEN requires the server to run with a session directory", out);
    return;
  }
  StatusOr<SessionPool::Lease> lease = AcquireFor(*found.value());
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  size_t loads = lease.value().artifact_loads;
  RunStats run;
  if (!lease.value().warm_loaded) {
    // Explicit warm start of an already-resident (or cold-constructed)
    // session; already-built slots keep their in-memory artifacts.
    std::string path = pool_->SessionFilePath(lease.value().fingerprint);
    Status loaded = lease.value().engine->LoadSession(path, &run);
    if (!loaded.ok()) {
      EmitError(ErrorCode::kIo, loaded.message(), out);
      return;
    }
    loads = run.artifact_loads;
  }
  pool_->RefreshCharge(lease.value().fingerprint);
  EmitOk("OPEN",
         "tenant=" + request.tenant + " " + KeyValue("loads", loads) +
             " pool=" + PoolLabel(lease.value()),
         out);
}

void Server::HandleStats(const StatsRequest& request, std::string* out) {
  if (!request.tenant.has_value()) {
    SessionPoolCounters pool_counters = pool_->counters();
    std::string details =
        KeyValue("requests", stats_.requests) + " " +
        KeyValue("ok", stats_.replies_ok) + " " +
        KeyValue("err", stats_.replies_error) + " " +
        KeyValue("data", stats_.data_lines) + " " +
        KeyValue("tenants", tenants_.size()) + " " +
        KeyValue("resident", pool_->NumResident()) + " " +
        KeyValue("hits", pool_counters.hits) + " " +
        KeyValue("misses", pool_counters.misses) + " " +
        KeyValue("evictions", pool_counters.evictions) + " " +
        KeyValue("warm_loads", pool_counters.warm_loads) + " " +
        KeyValue("rejections", pool_counters.rejections) + " " +
        KeyValue("charged_bytes", pool_->ChargedBytes()) + " " +
        KeyValue("peak_table_bytes", stats_.peak_table_bytes) + " " +
        KeyValue("budget", options_.table_memory_budget);
    EmitOk("STATS", details, out);
    return;
  }
  StatusOr<Tenant*> found = FindTenant(*request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  Tenant* tenant = found.value();
  std::string details = "tenant=" + *request.tenant +
                        " fingerprint=" + HexFingerprint(tenant->fingerprint);
  std::shared_ptr<Engine> engine = pool_->Peek(tenant->fingerprint);
  details += " " + KeyValue("resident", engine != nullptr ? 1 : 0);
  if (engine != nullptr) {
    RunStats cumulative = engine->CumulativeStats();
    details += " " + KeyValue("encode_builds", cumulative.encode_builds) +
               " " + KeyValue("td_builds", cumulative.td_builds) + " " +
               KeyValue("normalize_builds", cumulative.normalize_builds) +
               " " + KeyValue("cache_hits", cumulative.cache_hits) + " " +
               KeyValue("artifact_loads", cumulative.artifact_loads) + " " +
               KeyValue("dp_states", cumulative.dp_states) + " " +
               KeyValue("resident_bytes", engine->ResidentArtifactBytes());
  }
  EmitOk("STATS", details, out);
}

void Server::HandleClose(const CloseRequest& request, std::string* out) {
  auto it = tenants_.find(request.tenant);
  if (it == tenants_.end()) {
    EmitError(ErrorCode::kNoTenant,
              "tenant '" + request.tenant + "' has no loaded structure", out);
    return;
  }
  // The pooled session (if any) stays resident for other tenants with the
  // same structure; LRU eviction reclaims it naturally.
  tenants_.erase(it);
  EmitOk("CLOSE", "tenant=" + request.tenant, out);
}

void Server::EmitOk(std::string_view command, std::string_view details,
                    std::string* out) {
  ++stats_.replies_ok;
  *out += OkReply(command, details);
  *out += '\n';
}

void Server::EmitData(std::string_view payload, std::string* out) {
  ++stats_.data_lines;
  *out += DataReply(payload);
  *out += '\n';
}

void Server::EmitError(ErrorCode code, std::string_view message,
                       std::string* out) {
  ++stats_.replies_error;
  *out += ErrorReply(code, message);
  *out += '\n';
}

void Server::EmitStatus(const Status& status, std::string* out) {
  EmitError(ErrorCodeFor(status), status.message(), out);
}

}  // namespace treedl::server
