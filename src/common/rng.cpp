#include "common/rng.hpp"

#include <numeric>

namespace treedl {

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  TREEDL_CHECK(k <= n) << "cannot sample " << k << " from " << n;
  // Partial Fisher–Yates: shuffle only the first k slots.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformIndex(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace treedl
