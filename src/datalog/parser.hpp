// Datalog text parser.
//
// Syntax (one statement per '.', '%' comments):
//   path(X, Y) :- edge(X, Y).
//   path(X, Y) :- edge(X, Z), path(Z, Y).
//   blocked(X) :- node(X), not reachable(X).
//   edge(a, b).                       — ground fact
//   success :- root(V), accept(V).   — zero-arity heads allowed
// Identifiers starting with an upper-case letter (or '_') are variables;
// others are constants. Predicates are auto-declared with the arity of first
// use; inconsistent arities are parse errors. An optional base signature
// seeds predicate declarations (e.g. τ_td).
#ifndef TREEDL_DATALOG_PARSER_HPP_
#define TREEDL_DATALOG_PARSER_HPP_

#include <string>

#include "common/status.hpp"
#include "datalog/ast.hpp"

namespace treedl::datalog {

StatusOr<Program> ParseProgram(const std::string& text,
                               const Signature& base_signature = Signature());

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_PARSER_HPP_
