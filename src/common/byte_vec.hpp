// ByteVec: the bag-aligned byte vector of the tree-DP states.
//
// Replaces std::vector<uint8_t> inside DP states (bag colorings, membership
// flags, domination statuses). Two properties matter there:
//
//   1. Small-buffer storage. A state vector has bag-size entries (width + 1),
//      so up to kInlineCapacity bytes live inside the object — zero heap
//      traffic for every decomposition of width <= 12, which covers the
//      common case by a wide margin.
//   2. Arena relocation. When a wide bag does spill to the heap, the owning
//      FlatTable calls RelocateTo(&arena) right after the state is inserted:
//      the bytes move into the table's bump arena, the heap block is freed,
//      and the state's storage dies with the table in one Release() — no
//      per-state free list, and the bytes are charged to the same
//      MemoryBytes() footprint the eviction budget already tracks.
//
// The object is exactly sizeof(std::vector<uint8_t>) on LP64 (24 bytes), so
// swapping it into a DP state leaves record layouts — and therefore the
// deterministic peak-table-bytes counters of the BENCH gate — unchanged.
//
// Storage modes: kInline (bytes in the object), kHeap (owned, delete[]'d),
// kArena (borrowed from a caller's arena; freed by the arena, not by us).
// Copies always deep-copy into inline/heap storage; moves steal heap and
// arena pointers. Growth of heap storage is geometric with the capacity
// implied by NextCapacity(size), so no capacity field is stored.
#ifndef TREEDL_COMMON_BYTE_VEC_HPP_
#define TREEDL_COMMON_BYTE_VEC_HPP_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/arena.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"

namespace treedl {

class ByteVec {
 public:
  /// Bytes stored without heap allocation (bag sizes up to width 12).
  static constexpr size_t kInlineCapacity = 13;
  using value_type = uint8_t;

  ByteVec() = default;
  ByteVec(const ByteVec& other) { CopyFrom(other.data(), other.size_); }
  ByteVec& operator=(const ByteVec& other) {
    if (this != &other) {
      FreeHeap();
      mode_ = kInline;
      CopyFrom(other.data(), other.size_);
    }
    return *this;
  }
  ByteVec(ByteVec&& other) noexcept { StealFrom(other); }
  ByteVec& operator=(ByteVec&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      StealFrom(other);
    }
    return *this;
  }
  ~ByteVec() { FreeHeap(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t* data() { return mode_ == kInline ? inline_ : ptr_; }
  const uint8_t* data() const { return mode_ == kInline ? inline_ : ptr_; }
  uint8_t* begin() { return data(); }
  uint8_t* end() { return data() + size_; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + size_; }
  uint8_t& operator[](size_t i) { return data()[i]; }
  uint8_t operator[](size_t i) const { return data()[i]; }

  void assign(size_t n, uint8_t value) {
    ReserveOwned(n);
    std::memset(data(), value, n);
    size_ = static_cast<uint16_t>(n);
  }

  /// Grows zero-filled; shrinks in place.
  void resize(size_t n) {
    if (n > size_) {
      ReserveOwned(n);
      std::memset(data() + size_, 0, n - size_);
    }
    size_ = static_cast<uint16_t>(n);
  }

  void reserve(size_t n) {
    if (n > size_) ReserveOwned(n);
  }

  void push_back(uint8_t value) {
    ReserveOwned(size_ + size_t{1});
    data()[size_++] = value;
  }

  /// Inserts `value` before `pos` (a pointer into [begin(), end()]).
  void insert(const uint8_t* pos, uint8_t value) {
    size_t index = static_cast<size_t>(pos - data());
    ReserveOwned(size_ + size_t{1});
    uint8_t* d = data();
    std::memmove(d + index + 1, d + index, size_ - index);
    d[index] = value;
    ++size_;
  }

  /// Removes the byte at `pos` (a pointer into [begin(), end())). Shifts in
  /// place — valid in every mode, since a state owns its bytes uniquely even
  /// when they live in an arena.
  void erase(const uint8_t* pos) {
    size_t index = static_cast<size_t>(pos - data());
    uint8_t* d = data();
    std::memmove(d + index, d + index + 1, size_ - index - 1);
    --size_;
  }

  bool operator==(const ByteVec& other) const {
    return size_ == other.size_ &&
           std::memcmp(data(), other.data(), size_) == 0;
  }

  /// Order-sensitive content hash (the HashRange recipe over the bytes).
  size_t hash() const {
    size_t seed = 0xcbf29ce484222325ULL;
    const uint8_t* d = data();
    for (size_t i = 0; i < size_; ++i) HashCombine(&seed, d[i]);
    HashCombine(&seed, size_t{size_});
    return seed;
  }

  /// Moves heap-spilled bytes into `arena` and frees the heap block; inline
  /// and already-arena storage is left untouched. Called by FlatTable after
  /// inserting a state, so every stored state's bytes are either inside the
  /// record or inside the table's own arena.
  void RelocateTo(Arena* arena) {
    if (mode_ != kHeap) return;
    uint8_t* bytes = arena->AllocateArray<uint8_t>(size_);
    std::memcpy(bytes, ptr_, size_);
    delete[] ptr_;
    ptr_ = bytes;
    mode_ = kArena;
  }

 private:
  enum Mode : uint8_t { kInline = 0, kHeap = 1, kArena = 2 };

  static size_t NextCapacity(size_t n) {
    size_t capacity = 16;
    while (capacity < n) capacity *= 2;
    return capacity;
  }

  void FreeHeap() {
    if (mode_ == kHeap) delete[] ptr_;
  }

  // Leaves `other` empty-inline. Arena storage transfers as a borrowed
  // pointer — the arena outlives every state stored in its table.
  void StealFrom(ByteVec& other) {
    size_ = other.size_;
    mode_ = other.mode_;
    if (other.mode_ == kInline) {
      std::memcpy(inline_, other.inline_, other.size_);
    } else {
      ptr_ = other.ptr_;
    }
    other.ptr_ = nullptr;
    other.size_ = 0;
    other.mode_ = kInline;
  }

  void CopyFrom(const uint8_t* src, size_t n) {
    if (n <= kInlineCapacity) {
      std::memcpy(inline_, src, n);
      mode_ = kInline;
    } else {
      uint8_t* bytes = new uint8_t[NextCapacity(n)];
      std::memcpy(bytes, src, n);
      ptr_ = bytes;
      mode_ = kHeap;
    }
    size_ = static_cast<uint16_t>(n);
  }

  // Ensures writable owned storage (inline or heap) for `n` bytes,
  // preserving the current contents. Arena storage is copied out first: a
  // growing mutation must not write past its arena block.
  void ReserveOwned(size_t n) {
    TREEDL_CHECK(n <= 0xFFFF) << "ByteVec: size " << n << " exceeds 65535";
    if (mode_ == kInline) {
      if (n <= kInlineCapacity) return;
      uint8_t* bytes = new uint8_t[NextCapacity(n)];
      std::memcpy(bytes, inline_, size_);
      ptr_ = bytes;
      mode_ = kHeap;
    } else if (mode_ == kArena) {
      const uint8_t* src = ptr_;
      if (n <= kInlineCapacity) {
        std::memcpy(inline_, src, size_);
        mode_ = kInline;
      } else {
        uint8_t* bytes = new uint8_t[NextCapacity(n)];
        std::memcpy(bytes, src, size_);
        ptr_ = bytes;
        mode_ = kHeap;
      }
    } else if (n > NextCapacity(size_)) {
      // Heap blocks hold NextCapacity(size-at-allocation) bytes, which is
      // always >= NextCapacity(current size) — growth past that bound
      // reallocates geometrically.
      uint8_t* bytes = new uint8_t[NextCapacity(n)];
      std::memcpy(bytes, ptr_, size_);
      delete[] ptr_;
      ptr_ = bytes;
    }
  }

  uint8_t* ptr_ = nullptr;  // heap or arena storage; unused when inline
  uint16_t size_ = 0;
  uint8_t mode_ = kInline;
  uint8_t inline_[kInlineCapacity];
};

// The layout contract behind the deterministic table-bytes counters: a DP
// state must not change size when its vector member becomes a ByteVec.
static_assert(sizeof(void*) != 8 || sizeof(ByteVec) == 24);

}  // namespace treedl

#endif  // TREEDL_COMMON_BYTE_VEC_HPP_
