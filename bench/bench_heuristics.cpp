// Decomposition-quality ablation: min-fill vs min-degree vs MCS vs the
// tie-broken min-fill and the full preprocessing pipeline, all against the
// exact treewidth on random graphs (the substrate substitution for
// Bodlaender's algorithm documented in DESIGN.md).
//
// Flags: --quick shrinks the graph count for CI; --json <path> additionally
// writes the deterministic quality counters (total widths per heuristic,
// pipeline excess over exact, reduction-rule fire counts, proven lower
// bounds — no wall-clock, so the artifact is comparable across runners).
#include <cstdio>
#include <cstring>

#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "td/heuristics.hpp"
#include "td/improve.hpp"

namespace treedl {
namespace {

struct BenchConfig {
  int graphs = 32;
  int vertices = 14;
  uint64_t seed = 99;
  const char* json_path = nullptr;
};

/// Deterministic quality totals over the graph family. Every field is an
/// exact integer counter — the regression gate diffs these.
struct QualityTotals {
  size_t exact_width = 0;
  size_t min_fill_width = 0;
  size_t min_degree_width = 0;
  size_t mcs_width = 0;
  size_t tie_break_width = 0;
  size_t pipeline_width = 0;
  size_t pipeline_wins = 0;  // instances where the pipeline candidate shipped
  size_t lower_bound = 0;    // preprocessing-proven lower bounds, summed
  size_t eliminated = 0;     // vertices removed by the reductions
  size_t merges = 0;         // width-reduction bag merges
  ReductionCounters reductions;
};

size_t WidthOf(const Graph& graph, TdHeuristic heuristic) {
  auto td = Decompose(graph, heuristic);
  TREEDL_CHECK(td.ok()) << td.status();
  return static_cast<size_t>(td->Width());
}

QualityTotals CollectTotals(const BenchConfig& config,
                            const std::vector<Graph>& graphs,
                            const std::vector<int>& exact) {
  QualityTotals totals;
  for (size_t i = 0; i < graphs.size(); ++i) {
    const Graph& graph = graphs[i];
    size_t min_fill = WidthOf(graph, TdHeuristic::kMinFill);
    totals.exact_width += static_cast<size_t>(exact[i]);
    totals.min_fill_width += min_fill;
    totals.min_degree_width += WidthOf(graph, TdHeuristic::kMinDegree);
    totals.mcs_width += WidthOf(graph, TdHeuristic::kMcs);
    totals.tie_break_width += WidthOf(graph, TdHeuristic::kMinFillTieBreak);

    PipelineOptions popts;
    popts.seed = config.seed + i;
    PipelineStats stats;
    auto td = DecomposePipeline(graph, popts, &stats);
    TREEDL_CHECK(td.ok()) << td.status();
    size_t pipeline = static_cast<size_t>(td->Width());
    // The portfolio guarantee: never worse than plain min-fill, never better
    // than exact, and the proven lower bound never exceeds the exact width.
    TREEDL_CHECK(pipeline <= min_fill);
    TREEDL_CHECK(pipeline >= static_cast<size_t>(exact[i]));
    TREEDL_CHECK(stats.lower_bound <= exact[i]);
    totals.pipeline_width += pipeline;
    totals.pipeline_wins += stats.used_pipeline ? 1 : 0;
    totals.lower_bound += static_cast<size_t>(stats.lower_bound);
    totals.eliminated += stats.eliminated;
    totals.merges += stats.merges;
    totals.reductions.isolated += stats.reductions.isolated;
    totals.reductions.pendant += stats.reductions.pendant;
    totals.reductions.series += stats.reductions.series;
    totals.reductions.simplicial += stats.reductions.simplicial;
    totals.reductions.almost_simplicial += stats.reductions.almost_simplicial;
  }
  return totals;
}

void PrintTable(const BenchConfig& config, const std::vector<Graph>& graphs,
                const std::vector<int>& exact) {
  std::printf("Tree-decomposition heuristics vs exact treewidth\n");
  std::printf("(%d random partial 3-trees, n = %d)\n", config.graphs,
              config.vertices);
  std::printf("%10s %10s %10s %12s\n", "heuristic", "avg width", "excess",
              "time ms/graph");
  struct Row {
    const char* name;
    TdHeuristic heuristic;
  };
  for (Row row : {Row{"min-fill", TdHeuristic::kMinFill},
                  Row{"min-degree", TdHeuristic::kMinDegree},
                  Row{"mcs", TdHeuristic::kMcs},
                  Row{"tie-break", TdHeuristic::kMinFillTieBreak}}) {
    double total_width = 0, total_excess = 0;
    Timer timer;
    for (size_t i = 0; i < graphs.size(); ++i) {
      auto td = Decompose(graphs[i], row.heuristic);
      TREEDL_CHECK(td.ok());
      total_width += td->Width();
      total_excess += td->Width() - exact[static_cast<size_t>(i)];
    }
    double ms = timer.ElapsedMillis() / static_cast<double>(graphs.size());
    std::printf("%10s %10.2f %10.2f %12.3f\n", row.name,
                total_width / static_cast<double>(graphs.size()),
                total_excess / static_cast<double>(graphs.size()), ms);
  }
  {
    double total_width = 0, total_excess = 0;
    Timer timer;
    for (size_t i = 0; i < graphs.size(); ++i) {
      PipelineOptions popts;
      popts.seed = config.seed + i;
      auto td = DecomposePipeline(graphs[i], popts);
      TREEDL_CHECK(td.ok());
      total_width += td->Width();
      total_excess += td->Width() - exact[static_cast<size_t>(i)];
    }
    double ms = timer.ElapsedMillis() / static_cast<double>(graphs.size());
    std::printf("%10s %10.2f %10.2f %12.3f\n", "pipeline",
                total_width / static_cast<double>(graphs.size()),
                total_excess / static_cast<double>(graphs.size()), ms);
  }
  double avg_exact = 0;
  for (int w : exact) avg_exact += w;
  std::printf("%10s %10.2f\n", "exact",
              avg_exact / static_cast<double>(exact.size()));
}

void WriteJson(const BenchConfig& config, const QualityTotals& totals) {
  FILE* out = std::fopen(config.json_path, "w");
  TREEDL_CHECK(out != nullptr) << "cannot open " << config.json_path;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"heuristics\",\n"
               "  \"vertices\": %d,\n"
               "  \"seed\": %llu,\n"
               "  \"graphs\": %d,\n"
               "  \"exact_width_total\": %zu,\n"
               "  \"min_fill_width_total\": %zu,\n"
               "  \"min_degree_width_total\": %zu,\n"
               "  \"mcs_width_total\": %zu,\n"
               "  \"tie_break_width_total\": %zu,\n"
               "  \"pipeline_width_total\": %zu,\n"
               "  \"pipeline_excess_total\": %zu,\n"
               "  \"pipeline_wins\": %zu,\n"
               "  \"lower_bound_total\": %zu,\n"
               "  \"eliminated_vertices\": %zu,\n"
               "  \"width_reduce_merges\": %zu,\n"
               "  \"reduce_isolated\": %zu,\n"
               "  \"reduce_pendant\": %zu,\n"
               "  \"reduce_series\": %zu,\n"
               "  \"reduce_simplicial\": %zu,\n"
               "  \"reduce_almost_simplicial\": %zu\n"
               "}\n",
               config.vertices, static_cast<unsigned long long>(config.seed),
               config.graphs, totals.exact_width, totals.min_fill_width,
               totals.min_degree_width, totals.mcs_width,
               totals.tie_break_width, totals.pipeline_width,
               totals.pipeline_width - totals.exact_width,
               totals.pipeline_wins, totals.lower_bound, totals.eliminated,
               totals.merges, totals.reductions.isolated,
               totals.reductions.pendant, totals.reductions.series,
               totals.reductions.simplicial,
               totals.reductions.almost_simplicial);
  std::fclose(out);
  std::printf("  wrote %s\n", config.json_path);
}

void RunHeuristicsBench(const BenchConfig& config) {
  Rng rng(config.seed);
  std::vector<Graph> graphs;
  std::vector<int> exact;
  for (int i = 0; i < config.graphs; ++i) {
    graphs.push_back(RandomPartialKTree(config.vertices, 3, 0.75, &rng));
    exact.push_back(ExactTreewidth(graphs.back()).value());
  }
  PrintTable(config, graphs, exact);
  if (config.json_path != nullptr) {
    WriteJson(config, CollectTotals(config, graphs, exact));
  }
}

}  // namespace
}  // namespace treedl

int main(int argc, char** argv) {
  treedl::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.graphs = 16;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    }
  }
  treedl::RunHeuristicsBench(config);
  return 0;
}
